package perfmodel

import (
	"fmt"
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

// TestCalibrationReport prints the modeled proportions for the paper's
// workloads; run with -v to inspect during device-model calibration.
func TestCalibrationReport(t *testing.T) {
	dev := device.MI100()
	cfg := model.BERTLarge()
	for _, w := range []opgraph.Workload{
		opgraph.Phase1(cfg, 32, opgraph.FP32),
		opgraph.Phase1(cfg, 4, opgraph.FP32),
		opgraph.Phase2(cfg, 4, opgraph.FP32),
		opgraph.Phase1(cfg, 32, opgraph.Mixed),
		opgraph.Phase2(cfg, 4, opgraph.Mixed),
		opgraph.Phase1(cfg, 16, opgraph.FP32),
		opgraph.Phase2(cfg, 16, opgraph.FP32),
	} {
		r := Run(opgraph.Build(w), dev)
		t.Logf("%-14s total=%8v Transformer=%5.1f%% LAMB=%5.1f%% Output=%5.1f%% Embed=%4.1f%% | GEMM=%5.1f%% Lin=%5.1f%% FC=%5.1f%% BG=%4.1f%% SM=%4.1f%% GeLU=%4.1f%% DRRCLN=%4.1f%% Other=%4.1f%% | Attn=%4.1f%% Lin+FC=%5.1f%%",
			w.Name, r.Total.Round(1e6),
			100*r.ClassShare(opgraph.ClassTransformer),
			100*r.ClassShare(opgraph.ClassLAMB),
			100*r.ClassShare(opgraph.ClassOutput),
			100*r.ClassShare(opgraph.ClassEmbedding),
			100*r.GEMMShare(),
			100*r.CategoryShare(profile.CatLinear),
			100*r.CategoryShare(profile.CatFCGEMM),
			100*r.CategoryShare(profile.CatAttnBGEMM),
			100*r.CategoryShare(profile.CatScaleMaskSM),
			100*r.CategoryShare(profile.CatGeLU),
			100*r.CategoryShare(profile.CatDRRCLN),
			100*r.CategoryShare(profile.CatOther),
			100*r.AttentionOpsShare(),
			100*r.LinearFCShare())
	}

	// Mixed-precision speedup of forward+backward (paper: ~2×).
	fp32 := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)), dev)
	mp := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.Mixed)), dev)
	fwdBwd32 := fp32.PhaseTime(profile.Forward) + fp32.PhaseTime(profile.Backward)
	fwdBwd16 := mp.PhaseTime(profile.Forward) + mp.PhaseTime(profile.Backward)
	t.Logf("MP FWD+BWD speedup: %.2fx (LAMB FP32=%v MP=%v)", float64(fwdBwd32)/float64(fwdBwd16),
		fp32.ByClass()[opgraph.ClassLAMB].Round(1e6), mp.ByClass()[opgraph.ClassLAMB].Round(1e6))

	// Checkpointing (paper: ~+33% kernels, ~+27% runtime).
	ck := opgraph.Phase1(cfg, 32, opgraph.FP32)
	ck.CheckpointEvery = 6
	rck := Run(opgraph.Build(ck), dev)
	t.Logf("checkpointing: kernels +%.1f%% runtime +%.1f%%",
		100*(float64(rck.KernelCount())/float64(fp32.KernelCount())-1),
		100*(float64(rck.Total)/float64(fp32.Total)-1))

	fmt.Println() // keep fmt import for ad-hoc digging
}
