// Package perfmodel times an operator graph (internal/opgraph) on a
// device model (internal/device) and aggregates the result into the
// breakdowns the paper reports: by layer class (Fig. 3), by operator
// category (Fig. 4), per-GEMM arithmetic intensity (Fig. 6), and achieved
// bandwidth per operator class (Fig. 7). It is the single-device
// counterpart of the analytical methodology the paper uses for
// multi-device projections (Section 5.1).
package perfmodel

import (
	"time"

	"demystbert/internal/device"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

// OpTime is the modeled execution time of one Op entry.
type OpTime struct {
	Op        opgraph.Op
	PerLaunch time.Duration
	Total     time.Duration // PerLaunch × Repeat
}

// AchievedBW returns the modeled bytes/s this op sustains.
func (t OpTime) AchievedBW() float64 {
	if t.PerLaunch <= 0 {
		return 0
	}
	return float64(t.Op.Bytes) / t.PerLaunch.Seconds()
}

// Result is a timed iteration.
type Result struct {
	Graph  *opgraph.Graph
	Device device.Device
	Ops    []OpTime
	Total  time.Duration
}

// Run times every op of the graph on the device.
func Run(g *opgraph.Graph, dev device.Device) *Result {
	r := &Result{Graph: g, Device: dev, Ops: make([]OpTime, 0, len(g.Ops))}
	p := g.Workload.Precision
	for _, op := range g.Ops {
		per := dev.OpTime(op, opPrecision(op, p))
		total := per * time.Duration(op.Repeat)
		r.Ops = append(r.Ops, OpTime{Op: op, PerLaunch: per, Total: total})
		r.Total += total
	}
	return r
}

// opPrecision returns the numeric mode an op runs at: optimizer kernels
// stay FP32 even in mixed-precision training.
func opPrecision(op opgraph.Op, p opgraph.Precision) opgraph.Precision {
	if op.Class == opgraph.ClassLAMB {
		return opgraph.FP32
	}
	return p
}

// ByClass aggregates time by the paper's Fig. 3 layer classes.
func (r *Result) ByClass() map[opgraph.LayerClass]time.Duration {
	m := make(map[opgraph.LayerClass]time.Duration)
	for _, t := range r.Ops {
		m[t.Op.Class] += t.Total
	}
	return m
}

// ByCategory aggregates time by operator category (Fig. 4 / Fig. 7).
func (r *Result) ByCategory() map[profile.Category]time.Duration {
	m := make(map[profile.Category]time.Duration)
	for _, t := range r.Ops {
		m[t.Op.Category] += t.Total
	}
	return m
}

// ClassShare returns class c's fraction of iteration time.
func (r *Result) ClassShare(c opgraph.LayerClass) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.ByClass()[c]) / float64(r.Total)
}

// CategoryShare returns category c's fraction of iteration time.
func (r *Result) CategoryShare(c profile.Category) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.ByCategory()[c]) / float64(r.Total)
}

// GEMMShare returns the fraction of time in GEMM kernels of any category,
// including the output layer's projections (Section 3.2.2's "55% in FP32
// and 36% in MP").
func (r *Result) GEMMShare() float64 {
	if r.Total == 0 {
		return 0
	}
	var d time.Duration
	for _, t := range r.Ops {
		if t.Op.GEMM != nil {
			d += t.Total
		}
	}
	return float64(d) / float64(r.Total)
}

// AttentionOpsShare returns the fraction spent in the actual attention
// operation — the batched GEMMs plus the scale/mask/softmax/dropout
// pipeline (Takeaway 4's "7% in FP32, 9% in MP").
func (r *Result) AttentionOpsShare() float64 {
	return r.CategoryShare(profile.CatAttnBGEMM) + r.CategoryShare(profile.CatScaleMaskSM)
}

// LinearFCShare returns the fraction spent in linear and FC GEMM kernels
// (Obs. 2's "57% FP32" / Takeaway 3's "42% MP").
func (r *Result) LinearFCShare() float64 {
	return r.CategoryShare(profile.CatLinear) + r.CategoryShare(profile.CatFCGEMM)
}

// LAMBShare returns the optimizer's fraction of iteration time.
func (r *Result) LAMBShare() float64 {
	return r.CategoryShare(profile.CatLAMBStage1) + r.CategoryShare(profile.CatLAMBStage2)
}

// KernelCount returns total kernel launches.
func (r *Result) KernelCount() int { return r.Graph.KernelCount() }

// CategoryBW returns, per category, the time-weighted achieved bandwidth
// in bytes/s — Fig. 7's measured bandwidth requirement.
func (r *Result) CategoryBW() map[profile.Category]float64 {
	bytes := make(map[profile.Category]int64)
	times := make(map[profile.Category]time.Duration)
	for _, t := range r.Ops {
		bytes[t.Op.Category] += t.Op.TotalBytes()
		times[t.Op.Category] += t.Total
	}
	out := make(map[profile.Category]float64)
	for c, b := range bytes {
		if times[c] > 0 {
			out[c] = float64(b) / times[c].Seconds()
		}
	}
	return out
}

// CategoryIntensity returns, per category, the aggregate arithmetic
// intensity in FLOPs/byte (Fig. 7's ops/byte series).
func (r *Result) CategoryIntensity() map[profile.Category]float64 {
	flops := make(map[profile.Category]int64)
	bytes := make(map[profile.Category]int64)
	for _, t := range r.Ops {
		flops[t.Op.Category] += t.Op.TotalFLOPs()
		bytes[t.Op.Category] += t.Op.TotalBytes()
	}
	out := make(map[profile.Category]float64)
	for c, b := range bytes {
		if b > 0 {
			out[c] = float64(flops[c]) / float64(b)
		}
	}
	return out
}

// TokensPerSecond returns the modeled training throughput in tokens per
// second — the quantity the paper's Section 3.3.1 trades against
// convergence when choosing B and n.
func (r *Result) TokensPerSecond() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Graph.Workload.Tokens()) / r.Total.Seconds()
}

// PhaseTime returns the modeled time of one training phase.
func (r *Result) PhaseTime(ph profile.Phase) time.Duration {
	var d time.Duration
	for _, t := range r.Ops {
		if t.Op.Phase == ph {
			d += t.Total
		}
	}
	return d
}
