package perfmodel

import (
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

func run(t *testing.T, w opgraph.Workload) *Result {
	t.Helper()
	return Run(opgraph.Build(w), device.MI100())
}

func between(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f outside [%.3f, %.3f]", name, got, lo, hi)
	}
}

// TestFig3Bands asserts the paper's Fig. 3 runtime-breakdown claims for
// every configuration it plots.
func TestFig3Bands(t *testing.T) {
	cfg := model.BERTLarge()

	// Obs. 1: Transformer layers dominate (68-85%) in every config.
	for _, w := range []opgraph.Workload{
		opgraph.Phase1(cfg, 32, opgraph.FP32),
		opgraph.Phase1(cfg, 4, opgraph.FP32),
		opgraph.Phase2(cfg, 4, opgraph.FP32),
		opgraph.Phase1(cfg, 32, opgraph.Mixed),
		opgraph.Phase2(cfg, 4, opgraph.Mixed),
	} {
		r := run(t, w)
		between(t, w.Name+" transformer share", r.ClassShare(opgraph.ClassTransformer), 0.66, 0.87)
		between(t, w.Name+" output share", r.ClassShare(opgraph.ClassOutput), 0.015, 0.08)
		if s := r.ClassShare(opgraph.ClassEmbedding); s > 0.02 {
			t.Errorf("%s embedding share %.3f should be negligible", w.Name, s)
		}
	}

	// Takeaway 1: LAMB is the second-highest contributor: 7-10% at high
	// token count, rising to ~25% as tokens per iteration shrink.
	b32 := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	between(t, "LAMB share Ph1-B32-FP32", b32.LAMBShare(), 0.06, 0.11)
	b4 := run(t, opgraph.Phase1(cfg, 4, opgraph.FP32))
	between(t, "LAMB share Ph1-B4-FP32", b4.LAMBShare(), 0.20, 0.28)
	if b4.LAMBShare() <= b32.LAMBShare() {
		t.Error("LAMB share must grow as token count shrinks")
	}

	// Takeaway 2: mixed precision raises LAMB's share to 16-19%.
	mp := run(t, opgraph.Phase1(cfg, 32, opgraph.Mixed))
	between(t, "LAMB share Ph1-B32-FP16", mp.LAMBShare(), 0.15, 0.20)

	// LAMB must be the second-highest class after Transformer.
	classes := b32.ByClass()
	if classes[opgraph.ClassLAMB] <= classes[opgraph.ClassEmbedding] ||
		classes[opgraph.ClassLAMB] <= classes[opgraph.ClassOutput] {
		t.Error("LAMB must be the second-highest contributor (Takeaway 1)")
	}
}

// TestFig4Bands asserts the hierarchical-breakdown claims (Obs. 2,
// Takeaways 3-4).
func TestFig4Bands(t *testing.T) {
	cfg := model.BERTLarge()
	fp32 := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	mp := run(t, opgraph.Phase1(cfg, 32, opgraph.Mixed))

	// Obs. 2: Linear+FC dominate at ~57% FP32; Takeaway 3: drops to ~42% MP.
	between(t, "Linear+FC share FP32", fp32.LinearFCShare(), 0.48, 0.60)
	between(t, "Linear+FC share MP", mp.LinearFCShare(), 0.33, 0.45)
	if mp.LinearFCShare() >= fp32.LinearFCShare() {
		t.Error("reduced precision must shrink the Linear+FC share (Takeaway 3)")
	}

	// Linear ops alone: 22% FP32 / 19% MP.
	between(t, "Linear share FP32", fp32.CategoryShare(profile.CatLinear), 0.17, 0.26)
	between(t, "Linear share MP", mp.CategoryShare(profile.CatLinear), 0.14, 0.23)

	// Takeaway 4: the attention operation itself is small: 7% FP32 / 9%
	// MP, and grows under MP.
	between(t, "attention ops share FP32", fp32.AttentionOpsShare(), 0.05, 0.13)
	between(t, "attention ops share MP", mp.AttentionOpsShare(), 0.07, 0.17)
	if mp.AttentionOpsShare() <= fp32.AttentionOpsShare() {
		t.Error("attention ops share must grow under MP")
	}

	// DR+RC+LN: small but non-negligible (5% FP32, 9% MP), grows under MP.
	between(t, "DRRCLN share FP32", fp32.CategoryShare(profile.CatDRRCLN), 0.04, 0.09)
	if mp.CategoryShare(profile.CatDRRCLN) <= fp32.CategoryShare(profile.CatDRRCLN) {
		t.Error("DR+RC+LN share must grow under MP")
	}

	// GeLU is a noticeable fraction of the FC block (13% FP32, 15% MP).
	fcBar32 := fp32.CategoryShare(profile.CatFCGEMM) + fp32.CategoryShare(profile.CatGeLU)
	geluFrac := fp32.CategoryShare(profile.CatGeLU) / fcBar32
	between(t, "GeLU fraction of FC block FP32", geluFrac, 0.08, 0.25)
}

// TestGEMMShareBands asserts Section 3.2.2's totals: GEMMs are ~55% of
// FP32 time and ~36% of MP time.
func TestGEMMShareBands(t *testing.T) {
	cfg := model.BERTLarge()
	fp32 := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	mp := run(t, opgraph.Phase1(cfg, 32, opgraph.Mixed))
	between(t, "GEMM share FP32", fp32.GEMMShare(), 0.50, 0.68)
	between(t, "GEMM share MP", mp.GEMMShare(), 0.33, 0.52)
	if mp.GEMMShare() >= fp32.GEMMShare() {
		t.Error("GEMM share must drop under MP (GEMMs speed up more)")
	}
	// Non-GEMM ops: 45% FP32 → majority in MP (Takeaways 8-9).
	if nonGEMM := 1 - mp.GEMMShare(); nonGEMM < 0.48 {
		t.Errorf("MP non-GEMM share %.2f should be the majority", nonGEMM)
	}
}

// TestMixedPrecisionSpeedup asserts the paper's ~2x FWD+BWD speedup with
// LAMB time unchanged (Section 3.2.1).
func TestMixedPrecisionSpeedup(t *testing.T) {
	cfg := model.BERTLarge()
	fp32 := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	mp := run(t, opgraph.Phase1(cfg, 32, opgraph.Mixed))

	fb32 := fp32.PhaseTime(profile.Forward) + fp32.PhaseTime(profile.Backward)
	fb16 := mp.PhaseTime(profile.Forward) + mp.PhaseTime(profile.Backward)
	speedup := float64(fb32) / float64(fb16)
	between(t, "MP FWD+BWD speedup", speedup, 1.7, 2.7)

	l32 := fp32.ByClass()[opgraph.ClassLAMB]
	l16 := mp.ByClass()[opgraph.ClassLAMB]
	if l32 != l16 {
		t.Errorf("LAMB time changed under MP: %v vs %v", l32, l16)
	}
}

// TestFig8InputSweep asserts the input-size effects of Section 3.3.1.
func TestFig8InputSweep(t *testing.T) {
	cfg := model.BERTLarge()

	// LAMB share falls monotonically from ~25% (B=4) to ~7-10% (B=32).
	var prev float64 = 1
	for _, b := range []int{4, 8, 16, 32} {
		r := run(t, opgraph.Phase1(cfg, b, opgraph.FP32))
		s := r.LAMBShare()
		if s >= prev {
			t.Errorf("LAMB share did not fall at B=%d: %.3f >= %.3f", b, s, prev)
		}
		prev = s
	}

	// Takeaway 10: raising n from 128 (B=16) to 512 (B=4) — same token
	// count — raises the attention-ops share (paper: 7% → 17%).
	r128 := run(t, opgraph.Phase1(cfg, 16, opgraph.FP32))
	r512 := run(t, opgraph.Phase2(cfg, 4, opgraph.FP32))
	a128, a512 := r128.AttentionOpsShare(), r512.AttentionOpsShare()
	if a512 < a128+0.05 {
		t.Errorf("attention share must grow strongly with n: %.3f -> %.3f", a128, a512)
	}
	// Iteration time per token grows super-linearly with n: same tokens,
	// higher cost.
	if r512.Total <= r128.Total {
		t.Error("Ph2 at equal tokens must be slower than Ph1 (quadratic attention)")
	}
}

// TestFig9ModelSweep asserts the layer-size effects of Section 3.3.2.
func TestFig9ModelSweep(t *testing.T) {
	mk := func(d int) *Result {
		cfg := model.BERTLarge()
		cfg.DModel = d
		cfg.DFF = 4 * d
		cfg.Heads = d / 64
		return run(t, opgraph.Phase1(cfg, 4, opgraph.FP32))
	}
	c1, c2, c3 := mk(512), mk(1024), mk(2048)

	// Takeaway 11: GEMM and LAMB proportions grow with layer width. GEMM
	// growth is measured within forward+backward, since LAMB itself also
	// grows quadratically and competes for overall share.
	fbShare := func(r *Result) float64 {
		fb := r.PhaseTime(profile.Forward) + r.PhaseTime(profile.Backward)
		gemm := r.ByCategory()[profile.CatLinear] + r.ByCategory()[profile.CatFCGEMM]
		return float64(gemm) / float64(fb)
	}
	if !(fbShare(c1) < fbShare(c2) && fbShare(c2) < fbShare(c3)) {
		t.Errorf("Linear+FC share of FWD+BWD must grow with width: %.3f %.3f %.3f",
			fbShare(c1), fbShare(c2), fbShare(c3))
	}
	if !(c1.LAMBShare() < c2.LAMBShare() && c2.LAMBShare() < c3.LAMBShare()) {
		t.Errorf("LAMB share must grow with width: %.3f %.3f %.3f",
			c1.LAMBShare(), c2.LAMBShare(), c3.LAMBShare())
	}
	// Paper: LAMB reaches ~34% for the Megatron-like C3.
	between(t, "LAMB share C3", c3.LAMBShare(), 0.25, 0.40)

	// Obs. 4: layer count scales both Transformer and LAMB linearly, so
	// proportions barely move.
	cfg := model.BERTLarge()
	cfg.NumLayers = 48
	deep := run(t, opgraph.Phase1(cfg, 4, opgraph.FP32))
	if diff := deep.LAMBShare() - c2.LAMBShare(); diff < -0.05 || diff > 0.05 {
		t.Errorf("LAMB share changed by %.3f when doubling layers; should be ~stable", diff)
	}
}

// TestCheckpointing asserts Section 4's ~+33% kernels / ~+27% runtime.
func TestCheckpointing(t *testing.T) {
	cfg := model.BERTLarge()
	base := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	w := opgraph.Phase1(cfg, 32, opgraph.FP32)
	w.CheckpointEvery = 6
	ck := run(t, w)

	kinc := float64(ck.KernelCount())/float64(base.KernelCount()) - 1
	rinc := float64(ck.Total)/float64(base.Total) - 1
	between(t, "checkpoint kernel increase", kinc, 0.25, 0.40)
	between(t, "checkpoint runtime increase", rinc, 0.18, 0.33)

	// LAMB is unaffected, so its proportion drops.
	if ck.LAMBShare() >= base.LAMBShare() {
		t.Error("LAMB share must drop under checkpointing")
	}
}

// TestFig7Characteristics asserts the arithmetic-intensity and bandwidth
// structure of Fig. 7.
func TestFig7Characteristics(t *testing.T) {
	r := run(t, opgraph.Phase1(model.BERTLarge(), 32, opgraph.FP32))

	intensity := r.CategoryIntensity()
	// Memory-bound categories all sit at very low ops/byte.
	for _, c := range []profile.Category{
		profile.CatLAMBStage1, profile.CatLAMBStage2, profile.CatDRRCLN,
		profile.CatScaleMaskSM, profile.CatGeLU,
	} {
		if intensity[c] > 4 {
			t.Errorf("%s intensity %.2f should be < 4 ops/byte", c, intensity[c])
		}
	}
	// FC GEMMs are far more compute-intense than any EW category.
	if intensity[profile.CatFCGEMM] < 50 {
		t.Errorf("FC GEMM intensity %.1f should be high", intensity[profile.CatFCGEMM])
	}

	bw := r.CategoryBW()
	// Attention BGEMMs demand much higher bandwidth than FC GEMMs
	// (paper: 70% vs 20% of the EW-max).
	if bw[profile.CatAttnBGEMM] < 2*bw[profile.CatFCGEMM] {
		t.Errorf("attention BGEMM BW %.2e should far exceed FC GEMM BW %.2e",
			bw[profile.CatAttnBGEMM], bw[profile.CatFCGEMM])
	}
	// LAMB stages sit below the element-wise ceiling.
	if bw[profile.CatLAMBStage1] >= bw[profile.CatDRRCLN] {
		t.Error("LAMB bandwidth should sit below plain EW categories")
	}
}

func TestResultAggregations(t *testing.T) {
	r := run(t, opgraph.Phase1(model.Tiny(), 2, opgraph.FP32))
	var sum float64
	for _, c := range []opgraph.LayerClass{
		opgraph.ClassTransformer, opgraph.ClassEmbedding,
		opgraph.ClassOutput, opgraph.ClassLAMB,
	} {
		sum += r.ClassShare(c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("class shares sum to %v, want 1", sum)
	}
	if r.KernelCount() != r.Graph.KernelCount() {
		t.Fatal("kernel counts disagree")
	}
	if r.Total <= 0 {
		t.Fatal("total time must be positive")
	}
}

func TestEmptyResultSharesAreZero(t *testing.T) {
	r := &Result{Graph: &opgraph.Graph{}}
	if r.GEMMShare() != 0 || r.ClassShare(opgraph.ClassLAMB) != 0 || r.CategoryShare(profile.CatGeLU) != 0 {
		t.Fatal("empty result must report zero shares")
	}
}

// Throughput grows with B (Obs. 3: "increasing it sometimes improves
// throughput") but sub-linearly once the accelerator saturates.
func TestThroughputGrowsWithBatch(t *testing.T) {
	cfg := model.BERTLarge()
	var prev float64
	for _, b := range []int{4, 8, 16, 32} {
		r := run(t, opgraph.Phase1(cfg, b, opgraph.FP32))
		tps := r.TokensPerSecond()
		if tps <= prev {
			t.Fatalf("tokens/s did not grow at B=%d: %.0f vs %.0f", b, tps, prev)
		}
		prev = tps
	}
	// Super-linear cost in n: Ph2 at the same tokens has lower throughput.
	ph1 := run(t, opgraph.Phase1(cfg, 16, opgraph.FP32)).TokensPerSecond()
	ph2 := run(t, opgraph.Phase2(cfg, 4, opgraph.FP32)).TokensPerSecond()
	if ph2 >= ph1 {
		t.Fatalf("n=512 throughput %.0f should trail n=128's %.0f at equal tokens", ph2, ph1)
	}
}
