package perfmodel

import (
	"testing"

	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

// TestInferenceMode asserts the Section 7 inference discussion: no
// backprop, no LAMB, Transformer-layer breakdown similar to training's
// forward pass.
func TestInferenceMode(t *testing.T) {
	cfg := model.BERTLarge()
	w := opgraph.Phase1(cfg, 32, opgraph.FP32)
	w.Mode = opgraph.Inference
	w.Optimizer = opgraph.OptNone
	r := run(t, w)

	if r.PhaseTime(profile.Backward) != 0 || r.PhaseTime(profile.Update) != 0 {
		t.Fatal("inference must have no backward or update phase")
	}
	if r.LAMBShare() != 0 {
		t.Fatal("inference must not include LAMB")
	}

	// The forward pass of training and the inference pass share the same
	// transformer structure: GEMM share within the transformer must be
	// close.
	train := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	fwdGEMM := 0.0
	fwdTotal := 0.0
	for _, ot := range train.Ops {
		if ot.Op.Phase != profile.Forward || ot.Op.Class != opgraph.ClassTransformer {
			continue
		}
		fwdTotal += ot.Total.Seconds()
		if ot.Op.GEMM != nil {
			fwdGEMM += ot.Total.Seconds()
		}
	}
	infGEMM := 0.0
	infTotal := 0.0
	for _, ot := range r.Ops {
		if ot.Op.Class != opgraph.ClassTransformer {
			continue
		}
		infTotal += ot.Total.Seconds()
		if ot.Op.GEMM != nil {
			infGEMM += ot.Total.Seconds()
		}
	}
	trainShare := fwdGEMM / fwdTotal
	infShare := infGEMM / infTotal
	if diff := trainShare - infShare; diff < -0.02 || diff > 0.02 {
		t.Fatalf("transformer GEMM share differs between training-forward (%.3f) and inference (%.3f)",
			trainShare, infShare)
	}

	// Inference must be much cheaper than a full training iteration
	// (backprop ≈ 2× forward plus the update).
	if float64(r.Total) > 0.45*float64(train.Total) {
		t.Fatalf("inference %v vs training %v: should be well under half", r.Total, train.Total)
	}
}

// TestFineTuningMode asserts Section 7's fine-tuning discussion: the task
// head is negligible, the Transformer layers still dominate, and the
// training-technique structure is unchanged.
func TestFineTuningMode(t *testing.T) {
	cfg := model.BERTLarge()
	w := opgraph.Phase1(cfg, 32, opgraph.FP32)
	w.Mode = opgraph.FineTuning
	r := run(t, w)

	if s := r.ClassShare(opgraph.ClassOutput); s > 0.02 {
		t.Fatalf("fine-tuning output-head share %.3f should be negligible (simpler than pre-training)", s)
	}
	if s := r.ClassShare(opgraph.ClassTransformer); s < 0.80 {
		t.Fatalf("transformer share %.3f must dominate fine-tuning", s)
	}
	if r.LAMBShare() == 0 {
		t.Fatal("fine-tuning still runs the optimizer")
	}

	// Pre-training is more expensive than fine-tuning only via the
	// output layer; iteration times are otherwise close.
	pre := run(t, opgraph.Phase1(cfg, 32, opgraph.FP32))
	ratio := float64(pre.Total) / float64(r.Total)
	if ratio < 1.0 || ratio > 1.2 {
		t.Fatalf("pretrain/finetune time ratio %.3f; should be slightly above 1", ratio)
	}
}

// TestTakeawaysStableAcrossDevices verifies the paper's Section 7 claim
// that the ordering-level takeaways are architecture-agnostic: they hold
// on every device preset, and memory-boundedness grows when compute
// improves faster than memory.
func TestTakeawaysStableAcrossDevices(t *testing.T) {
	cfg := model.BERTLarge()
	for _, dev := range device.Presets() {
		b32 := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)), dev)
		b4 := Run(opgraph.Build(opgraph.Phase1(cfg, 4, opgraph.FP32)), dev)
		mp := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.Mixed)), dev)

		name := dev.Name
		if s := b32.ClassShare(opgraph.ClassTransformer); s < 0.55 {
			t.Errorf("%s: transformer share %.3f lost dominance", name, s)
		}
		if b4.LAMBShare() <= b32.LAMBShare() {
			t.Errorf("%s: LAMB share did not grow with fewer tokens", name)
		}
		if mp.LAMBShare() <= b32.LAMBShare() {
			t.Errorf("%s: LAMB share did not grow under MP", name)
		}
		if mp.GEMMShare() >= b32.GEMMShare() {
			t.Errorf("%s: GEMM share did not drop under MP", name)
		}
		// LAMB's exact rank is distribution-dependent (Section 7 notes
		// runtime-distribution takeaways can shift across accelerators);
		// it must at least stay well above the embedding everywhere.
		cls := b32.ByClass()
		if cls[opgraph.ClassLAMB] <= cls[opgraph.ClassEmbedding] {
			t.Errorf("%s: LAMB fell below the embedding layer", name)
		}
	}

	// Takeaways 7-9 amplify when compute improves faster than memory.
	base := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)), device.MI100())
	fast := Run(opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)), device.MI100().Scale(2, 1, 1))
	if fast.LAMBShare() <= base.LAMBShare() {
		t.Error("memory-bound LAMB share must grow on a compute-rich device")
	}
	if fast.GEMMShare() >= base.GEMMShare() {
		t.Error("GEMM share must shrink on a compute-rich device")
	}
}

func TestRunModeString(t *testing.T) {
	if opgraph.Pretraining.String() != "pretrain" ||
		opgraph.FineTuning.String() != "finetune" ||
		opgraph.Inference.String() != "inference" {
		t.Fatal("mode names wrong")
	}
}

// TestOptimizerChoice: the update phase's cost ordering — SGD < Adam <
// LAMB — and LAMB's extra serialization (global norm) and trust-ratio
// stage explain why the paper singles LAMB out for optimization.
func TestOptimizerChoice(t *testing.T) {
	cfg := model.BERTLarge()
	mk := func(k opgraph.OptimizerKind) *Result {
		w := opgraph.Phase1(cfg, 32, opgraph.FP32)
		w.Optimizer = k
		return run(t, w)
	}
	lamb := mk(opgraph.OptLAMB).ByClass()[opgraph.ClassLAMB]
	adam := mk(opgraph.OptAdam).ByClass()[opgraph.ClassLAMB]
	sgd := mk(opgraph.OptSGD).ByClass()[opgraph.ClassLAMB]
	if !(sgd < adam && adam < lamb) {
		t.Fatalf("update-phase cost ordering violated: SGD %v, Adam %v, LAMB %v", sgd, adam, lamb)
	}
	// Fused Adam reads the same 7 arrays but launches far fewer kernels
	// than LAMB's per-layer two-stage organization.
	var lambKernels, adamKernels int
	for _, op := range opgraph.Build(opgraph.Phase1(cfg, 32, opgraph.FP32)).Ops {
		if op.Class == opgraph.ClassLAMB {
			lambKernels += op.Repeat
		}
	}
	w := opgraph.Phase1(cfg, 32, opgraph.FP32)
	w.Optimizer = opgraph.OptAdam
	for _, op := range opgraph.Build(w).Ops {
		if op.Class == opgraph.ClassLAMB {
			adamKernels += op.Repeat
		}
	}
	if adamKernels >= lambKernels {
		t.Fatalf("fused Adam launches %d kernels vs LAMB's %d", adamKernels, lambKernels)
	}
}
