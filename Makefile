GO ?= go

.PHONY: all build test check bench-gemm bench-serve fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: vet + build + race tests on hot packages + full tests +
# benchmark smoke. CI entrypoint.
check:
	sh scripts/check.sh

# Run the GEMM benchmark suite and emit BENCH_gemm.json.
bench-gemm:
	sh scripts/bench_gemm.sh

# Run the serving latency-vs-throughput frontier and emit BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh

# Short fuzz pass over the GEMM and softmax kernels.
fuzz:
	$(GO) test -run xxx -fuzz FuzzGEMMBlockedVsNaive -fuzztime 30s ./internal/kernels/

clean:
	$(GO) clean ./...
