GO ?= go

.PHONY: all build test check bench-gemm bench-serve bench-dist fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: vet + build + race tests on hot packages + full tests +
# benchmark smoke. CI entrypoint.
check:
	sh scripts/check.sh

# Run the GEMM benchmark suite and emit BENCH_gemm.json.
bench-gemm:
	sh scripts/bench_gemm.sh

# Run the serving latency-vs-throughput frontier and emit BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh

# Real multi-process distributed-training sweep (world x overlap) and
# emit BENCH_dist.json with measured vs modeled scaling.
bench-dist:
	sh scripts/bench_dist.sh

# Short fuzz pass over the GEMM and softmax kernels.
fuzz:
	$(GO) test -run xxx -fuzz FuzzGEMMBlockedVsNaive -fuzztime 30s ./internal/kernels/

clean:
	$(GO) clean ./...
