package demystbert

// Cross-substrate consistency tests: the real execution engine and the
// analytical operator graph must agree on the algorithmic quantities —
// they implement the same network, so per-phase GEMM FLOP counts must
// match exactly, not approximately. A drift here means one substrate's
// operator enumeration is wrong.

import (
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

// realTransformerGEMMFLOPs runs one real iteration and sums GEMM FLOPs of
// transformer-layer kernels per phase.
func realGEMMFLOPs(t *testing.T, cfg model.Config, b, n int) map[profile.Phase]int64 {
	t.Helper()
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewCtx(2)
	batch := data.NewGenerator(cfg.Vocab, 0.15, 3).Next(b, n)
	m.Step(ctx, batch)

	out := make(map[profile.Phase]int64)
	for _, e := range ctx.Prof.Events() {
		if e.Category == profile.CatLinear || e.Category == profile.CatAttnBGEMM || e.Category == profile.CatFCGEMM {
			if e.FLOPs > 0 && e.Kernel != "linear_fwd_bias" && e.Kernel != "linear_bwd_bgrad" {
				out[e.Phase] += e.FLOPs
			}
		}
	}
	return out
}

// graphGEMMFLOPs sums transformer GEMM FLOPs per phase from the
// analytical graph.
func graphGEMMFLOPs(cfg model.Config, b, n int) map[profile.Phase]int64 {
	w := opgraph.Workload{Cfg: cfg, B: b, SeqLen: n, Precision: opgraph.FP32}
	out := make(map[profile.Phase]int64)
	for _, op := range opgraph.Build(w).Ops {
		if op.Class == opgraph.ClassTransformer && op.GEMM != nil {
			out[op.Phase] += op.TotalFLOPs()
		}
	}
	return out
}

func TestRealAndAnalyticalGEMMFLOPsMatchExactly(t *testing.T) {
	cfg := model.Tiny()
	const b, n = 4, 32
	real := realGEMMFLOPs(t, cfg, b, n)
	graph := graphGEMMFLOPs(cfg, b, n)

	for _, ph := range []profile.Phase{profile.Forward, profile.Backward} {
		// The real profiler folds bias kernels into Linear/FCGEMM
		// categories but records them as separate events (excluded
		// above); the remaining GEMM FLOPs must match to the operation.
		if real[ph] != graph[ph] {
			t.Errorf("%s transformer GEMM FLOPs: real engine %d vs analytical graph %d",
				ph, real[ph], graph[ph])
		}
	}
}

func TestRealAndAnalyticalScaleTogether(t *testing.T) {
	// Doubling B must exactly double both substrates' transformer GEMM
	// FLOPs — the linear-in-tokens law (Obs. 3) holding bit-for-bit.
	cfg := model.Tiny()
	g1 := graphGEMMFLOPs(cfg, 2, 32)
	g2 := graphGEMMFLOPs(cfg, 4, 32)
	r1 := realGEMMFLOPs(t, cfg, 2, 32)
	r2 := realGEMMFLOPs(t, cfg, 4, 32)
	for _, ph := range []profile.Phase{profile.Forward, profile.Backward} {
		if g2[ph] != 2*g1[ph] {
			t.Errorf("graph %s FLOPs not linear in B: %d vs %d", ph, g2[ph], g1[ph])
		}
		if r2[ph] != 2*r1[ph] {
			t.Errorf("real %s FLOPs not linear in B: %d vs %d", ph, r2[ph], r1[ph])
		}
	}
}

func TestRealEngineLAMBTrafficMatchesTakeaway7(t *testing.T) {
	// The real optimizer's recorded stage-1 traffic must equal the
	// analytical 7 × params × 4 bytes for the same model.
	cfg := model.Tiny()
	run, err := TrainReal(cfg, 2, 16, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := run.Profile.ByCategory[profile.CatLAMBStage1].Bytes
	// Subtract the global-norm read (1 × params × 4).
	params := int64(cfg.ParamCount())
	if want := 7*params*4 + params*4; got != want {
		t.Errorf("real LAMB stage-1+norm traffic %d, want %d", got, want)
	}
}
