// Package demystbert reproduces "Demystifying BERT: System Design
// Implications" (Pati, Aga, Jayasena, Sinclair — IISWC 2022) in pure Go.
//
// The library has two coupled substrates (see DESIGN.md):
//
//   - a real execution engine — tensors, parallel GEMM kernels, a full
//     BERT pre-training network with hand-written backprop, the LAMB
//     optimizer, and a rocProf-style kernel profiler — which trains
//     reduced-scale BERT configurations for real;
//
//   - an analytical model — an architecture-agnostic operator graph with
//     the paper's exact Table 2b GEMM dimensions, timed on a calibrated
//     roofline of an MI100-class accelerator — which regenerates every
//     table and figure of the paper's evaluation at BERT-Large scale,
//     including mixed precision, activation checkpointing, distributed
//     data-parallel and tensor-sliced training, kernel/GEMM fusion, and
//     near-memory compute.
//
// This package is the public facade: it re-exports the configuration,
// workload, device, and result types and provides one-call entry points
// for characterization, real training, and artifact regeneration.
package demystbert

import (
	"fmt"
	"io"

	"demystbert/internal/data"
	"demystbert/internal/device"
	"demystbert/internal/dist"
	"demystbert/internal/model"
	"demystbert/internal/nmc"
	"demystbert/internal/nn"
	"demystbert/internal/opgraph"
	"demystbert/internal/optim"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
	"demystbert/internal/report"
)

// Re-exported core types. Aliases keep the full method sets available
// without exposing internal import paths.
type (
	// Config holds BERT hyperparameters (Table 2a).
	Config = model.Config
	// Workload is one experimental configuration (phase, B, precision,
	// checkpointing, tensor slicing).
	Workload = opgraph.Workload
	// Precision selects FP32 or mixed-precision training.
	Precision = opgraph.Precision
	// Device is the calibrated roofline accelerator model.
	Device = device.Device
	// Result is a timed iteration with the paper's breakdowns.
	Result = perfmodel.Result
	// Graph is the operator graph of one training iteration.
	Graph = opgraph.Graph
	// DistProfile is one per-device bar of Fig. 11.
	DistProfile = dist.Profile
	// Batch is a synthetic pre-training mini-batch.
	Batch = data.Batch
	// BERT is the real-execution pre-training network.
	BERT = model.BERT
	// FineTuner adapts a pre-trained BERT to a SQuAD-style span task.
	FineTuner = model.FineTuner
	// QABatch is a synthetic extractive-QA fine-tuning batch.
	QABatch = data.QABatch
	// TrainCtx carries profiler/RNG/precision state through real runs.
	TrainCtx = nn.Ctx
	// RunMode selects pre-training, fine-tuning, or inference graphs.
	RunMode = opgraph.RunMode
)

// Precisions.
const (
	FP32  = opgraph.FP32
	Mixed = opgraph.Mixed
)

// Run modes (Section 7).
const (
	Pretraining = opgraph.Pretraining
	FineTuning  = opgraph.FineTuning
	Inference   = opgraph.Inference
)

// Model configurations.
var (
	// BERTLarge is the paper's primary subject (24 layers, d_model 1024,
	// ~340M parameters).
	BERTLarge = model.BERTLarge
	// BERTBase is the 12-layer, 110M-parameter configuration.
	BERTBase = model.BERTBase
	// MegatronBERT approximates the paper's C3 (2× d_model).
	MegatronBERT = model.MegatronBERT
	// GPTMedium approximates a GPT-2-Medium-class causal decoder
	// (Section 2.3: training cost structure matches the encoder).
	GPTMedium = model.GPTMedium
	// TinyBERT is a reduced-scale configuration the pure-Go engine can
	// train quickly.
	TinyBERT = model.Tiny
)

// Real-engine model lifecycle.
var (
	// NewModel constructs a real-execution BERT.
	NewModel = model.New
	// LoadModel reads a checkpoint written with (*BERT).Save.
	LoadModel = model.Load
	// NewFineTunerFor wraps a (pre-trained) model with a span task head.
	NewFineTunerFor = model.NewFineTuner
)

// Workload constructors.
var (
	// Phase1 is pre-training Phase-1 (n=128).
	Phase1 = opgraph.Phase1
	// Phase2 is pre-training Phase-2 (n=512).
	Phase2 = opgraph.Phase2
)

// MI100 returns the calibrated model of the paper's measurement platform.
var MI100 = device.MI100

// Characterize builds the workload's operator graph and times it on the
// device, returning the paper's breakdowns (Figs. 3, 4, 6, 7).
func Characterize(w Workload, dev Device) *Result {
	return perfmodel.Run(opgraph.Build(w), dev)
}

// BuildGraph returns the architecture-agnostic operator graph of one
// training iteration (Table 2b manifestations included).
func BuildGraph(w Workload) *Graph {
	return opgraph.Build(w)
}

// Fig11Profiles returns the five distributed-training bars of Fig. 11.
func Fig11Profiles(w Workload, dev Device) []DistProfile {
	return dist.Fig11(w, dev)
}

// RealRun is the outcome of really executing BERT pre-training iterations
// on the pure-Go engine.
type RealRun struct {
	// Losses holds the per-iteration training loss.
	Losses []float64
	// Profile aggregates every executed kernel by category and phase.
	Profile profile.Summary
	// Params is the model's trainable-parameter count.
	Params int
}

// TrainReal constructs a BERT model of the given configuration and runs
// `iters` real pre-training iterations (forward, backward, LAMB update)
// on synthetic data, profiling every kernel. Use TinyBERT-scale
// configurations: the engine is a CPU reference implementation, not a
// GPU.
func TrainReal(cfg Config, b, n, iters int, seed uint64) (*RealRun, error) {
	m, err := model.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, seed+1)
	ctx := nn.NewCtx(seed + 2)
	opt := optim.NewLAMB(0.01)

	run := &RealRun{Params: m.NumParams()}
	for i := 0; i < iters; i++ {
		batch := gen.Next(b, n)
		loss := m.Step(ctx, batch)
		opt.Step(ctx, m.Params())
		m.ZeroGrads()
		run.Losses = append(run.Losses, loss)
	}
	run.Profile = ctx.Prof.Summarize()
	return run, nil
}

// MemorizeReal trains on one fixed synthetic batch for `iters`
// iterations — the standard smoke test that the full gradient path works:
// the loss must fall as the model memorizes the batch. Dropout is
// disabled for deterministic descent.
func MemorizeReal(cfg Config, b, n, iters int, seed uint64) (*RealRun, error) {
	cfg.DropProb = 0
	m, err := model.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	batch := data.NewGenerator(cfg.Vocab, 0.15, seed+1).Next(b, n)
	ctx := nn.NewCtx(seed + 2)
	opt := optim.NewLAMB(0.01)

	run := &RealRun{Params: m.NumParams()}
	for i := 0; i < iters; i++ {
		loss := m.Step(ctx, batch)
		opt.Step(ctx, m.Params())
		m.ZeroGrads()
		run.Losses = append(run.Losses, loss)
	}
	run.Profile = ctx.Prof.Summarize()
	return run, nil
}

// Artifacts lists the regenerable paper artifacts, in paper order.
func Artifacts() []string {
	return []string{
		"table2b", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
		"ckpt", "fig11", "fig12a", "fig12b", "nmc", "modes", "takeaways",
	}
}

// WriteArtifact renders one paper artifact (see Artifacts) for the given
// model configuration and device.
func WriteArtifact(w io.Writer, artifact string, cfg Config, dev Device) error {
	switch artifact {
	case "table2b":
		report.Table2b(w, cfg)
	case "fig3":
		report.Fig3(w, cfg, dev)
	case "fig4":
		report.Fig4(w, cfg, dev)
	case "fig6":
		report.Fig6(w, cfg, dev)
	case "fig7":
		report.Fig7(w, cfg, dev)
	case "fig8":
		report.Fig8(w, cfg, dev)
	case "fig9":
		report.Fig9(w, dev)
	case "ckpt":
		report.Checkpointing(w, cfg, dev)
	case "fig11":
		report.Fig11(w, cfg, dev)
	case "fig12a":
		report.Fig12a(w, cfg, dev)
	case "fig12b":
		report.Fig12b(w, cfg, dev)
	case "nmc":
		report.NMC(w, cfg, dev)
	case "modes":
		report.Modes(w, cfg, dev)
	case "takeaways":
		report.Takeaways(w, cfg, dev)
	default:
		return fmt.Errorf("demystbert: unknown artifact %q (have %v)", artifact, Artifacts())
	}
	return nil
}

// NMCStudy runs the Section 6.2.1 near-memory-compute study for the
// workload on an MI100-class system with bank-level NMC.
func NMCStudy(w Workload) nmc.LAMBStudy {
	return nmc.NewSystem().StudyLAMB(w)
}

// FineTuneReal runs `iters` real SQuAD-style fine-tuning iterations on a
// freshly pre-initialized model (Fig. 1b's workflow; pass a loaded
// checkpoint through NewFineTunerFor for the full pre-train→fine-tune
// path).
func FineTuneReal(cfg Config, b, n, iters int, seed uint64) (*RealRun, error) {
	base, err := model.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	f := model.NewFineTuner(base, seed+1)
	gen := data.NewGenerator(cfg.Vocab, 0.15, seed+2)
	ctx := nn.NewCtx(seed + 3)
	opt := optim.NewLAMB(0.01)

	run := &RealRun{Params: base.NumParams()}
	for i := 0; i < iters; i++ {
		loss := f.Step(ctx, gen.NextQA(b, n))
		opt.Step(ctx, f.Params())
		f.ZeroGrads()
		run.Losses = append(run.Losses, loss)
	}
	run.Profile = ctx.Prof.Summarize()
	return run, nil
}
