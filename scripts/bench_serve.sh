#!/bin/sh
# bench_serve.sh — run the serving latency-vs-throughput frontier and
# emit BENCH_serve.json: for each GEMM path (blocked f32, fused
# epilogues, int8 quantized), open-loop load sweeps with client-side
# p50/p90/p99 latency and goodput (real tokens/s), plus a serial
# MaxBatch=1 baseline at saturation, the batched/serial goodput ratio,
# the batched-vs-serial prediction-equality check, and the steady-state
# pack-cache miss count (must be 0 — serving pre-packs all weights at
# load). Uses only the go toolchain.
#
# Workload: short query-style requests (3-8 tokens, buckets 4/8) with
# BERT's standard 15% mask rate against a 12k-entry vocabulary — the
# regime where continuous batching pays: per-forward fixed costs
# (dominated by the vocab-sized MLM decoder operand prep) amortize over
# up to 64 coalesced requests instead of being paid per request.
#
# Usage: scripts/bench_serve.sh [duration-per-point]   (default 5s)
set -eu
cd "$(dirname "$0")/.."

DURATION="${1:-5s}"

go run ./cmd/bertserve -bench \
	-bench-out BENCH_serve.json \
	-paths blocked,fused,int8 \
	-rates 250,500,1000,2000 \
	-saturation-rate 6000 \
	-duration "$DURATION" \
	-vocab 12000 -mask-frac 0.15 \
	-min-len 3 -max-len 8 -buckets 4,8 -max-batch 64
