#!/bin/sh
# bench_gemm.sh — run the GEMM benchmarks and emit BENCH_gemm.json with
# per-shape ns/op, GFLOP/s, and allocs/op for the blocked, pre-packed
# (GEMMPacked), naive, and batched (blocked vs per-matrix, Table 2b
# attention shapes n x n x dHead and n x dHead x n at n in {128, 512})
# paths, plus the fused-epilogue FFN tail (unfused kernel chain vs
# bias+GeLU / bias+residual+LayerNorm tile write-back) and the int8
# quantized path against f32 pre-packed on the paper's weight-stationary
# shapes. Uses only the go toolchain and awk (no external deps).
#
# Usage: scripts/bench_gemm.sh [benchtime]   (default 2x per benchmark)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT=BENCH_gemm.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run 'xxx' -bench 'GEMMPaperSizes|GEMMInt8PaperSizes|RealGEMM|RealAttentionBGEMM|RealFFN|RealAddBias|RealBiasGrad|Fig6GEMMIntensity' \
	-benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; gflops = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "GFLOP/s")   gflops = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	rec = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (gflops != "") rec = rec sprintf(", \"gflops\": %s", gflops)
	if (allocs != "") rec = rec sprintf(", \"allocs_per_op\": %s", allocs)
	rec = rec "}"
	recs[n++] = rec
}
END {
	print "{"
	printf "  \"bench\": \"gemm\",\n"
	printf "  \"benchtime\": \"'"$BENCHTIME"'\",\n"
	print "  \"results\": ["
	for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}' "$RAW" >"$OUT"

echo "wrote $OUT"
