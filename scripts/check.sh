#!/bin/sh
# check.sh — tier-1 gate for the repo: vet, build, race-test the hot
# packages, full test sweep, and a short benchmark smoke so kernel
# regressions fail loudly before merge. Run from the repo root or via
# `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (kernels, tensor, obs, profile, trace)"
go test -race ./internal/kernels/ ./internal/tensor/ ./internal/obs/ ./internal/profile/ ./internal/trace/

echo "== go test -race -short (nn, model, optim, ddp, distnet, memscale, audit, serve, runutil — reduced scale)"
go test -race -short ./internal/nn/ ./internal/model/ ./internal/optim/ ./internal/ddp/ ./internal/distnet/ ./internal/memscale/ ./internal/audit/ ./internal/serve/ ./internal/runutil/

echo "== spill-arena race leg (concurrent regions through the shared scratch pool)"
go test -race -run 'TestArenaConcurrentRegions' -count=1 ./internal/memscale/

echo "== go test ./..."
go test ./...

echo "== numerics audit sweep (cross-path differential + gradcheck + determinism)"
go run ./cmd/bertchar -audit >/dev/null

echo "== loss-scaler cap + FP16 conformance"
go test -run 'TestLossScaler' -count=1 ./internal/optim/
go test -run 'TestF16' -count=1 ./internal/tensor/

echo "== alloc guard (GEMM + fused epilogue + int8 + bias kernels + ring allreduce + metrics + nil profiler, zero allocs)"
go test -run 'TestGEMMZeroAllocSteadyState|TestGEMMPackedEpilogueZeroAlloc|TestGEMMInt8ZeroAlloc|TestAddBiasBiasGradZeroAlloc' -count=1 ./internal/kernels/
go test -run 'TestRingAllReduceZeroAllocSteadyState' -count=1 ./internal/ddp/
go test -run 'TestMetricsZeroAlloc|TestWindowObserveZeroAlloc|TestHistogramObserveExemplarNoTraceZeroAlloc' -count=1 ./internal/obs/
go test -run 'TestNilProfilerZeroAlloc' -count=1 ./internal/profile/
go test -run 'TestNilTracerZeroAlloc' -count=1 ./internal/trace/

echo "== alloc guard (accumulation hot loop: zero-copy batch slicing, steady-state spill arena)"
go test -run 'TestAccumHotLoopAllocs' -count=1 ./internal/model/
go test -run 'TestArenaSteadyStateAllocs' -count=1 ./internal/memscale/

echo "== debug server smoke (/metrics, /debug/vars, /debug/pprof/)"
go test -run 'TestDebugServerSmoke' -count=1 ./internal/obs/

echo "== serving smoke (live HTTP server on blocked/fused/int8, 200s + predictions)"
go test -run 'TestServeSmokeAllPaths' -count=1 ./internal/serve/

echo "== serving steady state (zero pack-cache misses after warmup)"
go test -run 'TestSteadyStateZeroPackMisses' -count=1 ./internal/serve/

echo "== request tracing smoke (X-Trace-Id header, /debug/requests breakdown, stage sums)"
go test -run 'TestSubmitTraceStagesSumToTotal|TestHTTPTraceHeaderAndDebugRequests|TestClientSuppliedTraceID' -count=1 ./internal/serve/

echo "== cross-rank trace merge (clock sync, shard exchange, straggler report)"
go test -run 'TestClockSyncWorld2|TestTraceShardExchange|TestMergeAlignsInjectedClockSkew|TestChromeTraceTrackOrdering' -count=1 ./internal/distnet/ ./internal/trace/

echo "== padding-mask audit (fused/unfused parity, exact-zero masked keys, padded vs serial)"
go test -run 'TestFusedUnfusedMaskSoftmaxParity|TestMaskedKeysExactlyZeroWeight|TestPaddedBatchMatchesSerial' -count=1 ./internal/nn/
go test -run 'TestPredictMaskedAtBucketedMatchesSerial' -count=1 ./internal/model/

echo "== graceful shutdown (in-flight drain + signal-driven cleanup)"
go test -run 'TestServerShutdownDrainsInFlight' -count=1 ./internal/obs/
go test -run 'TestSignalDrainsAndExits' -count=1 ./internal/runutil/

echo "== distributed training smoke (2 real processes over loopback TCP, loss falls)"
go run ./cmd/bertdist -launch 2 -steps 6 -train-b 2 -seq 16 -fixed-data -drop 0 | grep "loss fell"

echo "== distributed trace smoke (2 ranks, merged timeline + straggler table)"
go run ./cmd/bertdist -launch 2 -steps 3 -train-b 2 -seq 16 -drop 0 -trace -trace-out /tmp/bertdist_trace.json | grep "gating-rank" >/dev/null
test -s /tmp/bertdist_trace.json && rm -f /tmp/bertdist_trace.json

echo "== distributed shutdown (SIGTERM to launcher drains workers, exit 143)"
go test -run 'TestLaunchSIGTERMDrains' -count=1 ./cmd/bertdist/

echo "== kill-mid-run checkpoint (SIGTERM mid-step leaves a loadable params file, no temp litter)"
go test -run 'TestWorkerSIGTERMCheckpointLoadable' -count=1 ./cmd/bertdist/

echo "== cross-process bitwise parity (world=2 TCP training == in-process ddp; ZeRO-1 == unsharded)"
go test -run 'TestLaunchBitwiseMatchesInProcessDDP' -count=1 ./cmd/bertdist/
go test -run 'TestLaunchZero1BitwiseMatchesUnsharded' -count=1 ./cmd/bertdist/

echo "== memory-scaled BERT-Large smoke (reduced layers; accumulation + virtual shards + spill under GOMEMLIMIT)"
go run ./cmd/bertchar -large -large-layers 2 -large-b 2 -accum 2 -large-seq 32 -shards 2 -ckpt-every 1 -memlimit-mb 768 >/dev/null

echo "== bench smoke (GEMM paper shapes + fused FFN tail + int8, 1 iteration)"
go test -run 'xxx' -bench 'Fig6GEMMIntensity|GEMMPaperSizes|GEMMInt8PaperSizes|RealFFN' -benchtime 1x -benchmem . >/dev/null

echo "check: OK"
