#!/bin/sh
# check.sh — tier-1 gate for the repo: vet, build, race-test the hot
# packages, full test sweep, and a short benchmark smoke so kernel
# regressions fail loudly before merge. Run from the repo root or via
# `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (kernels, tensor, obs, profile)"
go test -race ./internal/kernels/ ./internal/tensor/ ./internal/obs/ ./internal/profile/

echo "== go test ./..."
go test ./...

echo "== alloc guard (GEMM + metrics hot paths + nil profiler, zero allocs)"
go test -run 'TestGEMMZeroAllocSteadyState' -count=1 ./internal/kernels/
go test -run 'TestMetricsZeroAlloc' -count=1 ./internal/obs/
go test -run 'TestNilProfilerZeroAlloc' -count=1 ./internal/profile/

echo "== debug server smoke (/metrics, /debug/vars, /debug/pprof/)"
go test -run 'TestDebugServerSmoke' -count=1 ./internal/obs/

echo "== bench smoke (GEMM paper shapes, 1 iteration)"
go test -run 'xxx' -bench 'Fig6GEMMIntensity|GEMMPaperSizes' -benchtime 1x -benchmem . >/dev/null

echo "check: OK"
