#!/bin/sh
# bench_dist.sh — real multi-process distributed-training sweep: forks
# bertdist worker processes over loopback TCP for each world size, with
# gradient-bucket overlap on and off, and emits BENCH_dist.json holding
# the measured step decomposition (fwd/bwd/comm/exposed), the measured
# scaling efficiency, and the analytical model's prediction (dist.PredictDP)
# for the same measured buckets and probed link — both the paper's
# dedicated-device assumption and a shared-host variant that dilates
# compute by world/cores. Uses only the go toolchain (no external deps).
#
# Usage: scripts/bench_dist.sh [worlds] [steps]   (default "1,2,4" and 8)
set -eu
cd "$(dirname "$0")/.."

WORLDS="${1:-1,2,4}"
STEPS="${2:-8}"
OUT=BENCH_dist.json

go run ./cmd/bertdist -bench-dist "$OUT" -bench-worlds "$WORLDS" \
	-steps "$STEPS" -layers 4 -dmodel 128 -seq 64 -train-b 4 \
	-bucket-kb 128 -fixed-data
