package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	if code != 0 {
		t.Logf("stderr: %s", errOut.String())
	}
	return out.String(), code
}

func TestPretrainProfile(t *testing.T) {
	out, code := runCmd(t, "-iters", "1")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"parameters", "iteration 1: loss", "kernel profile", "GEMM share", "LAMBStage1"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
}

func TestFinetuneProfile(t *testing.T) {
	out, code := runCmd(t, "-mode", "finetune", "-iters", "1")
	if code != 0 || !strings.Contains(out, "span loss") {
		t.Fatalf("finetune profile failed: code %d", code)
	}
}

func TestMixedPrecisionProfile(t *testing.T) {
	out, code := runCmd(t, "-mp", "-iters", "1")
	if code != 0 || !strings.Contains(out, "mixed-precision=true") {
		t.Fatalf("MP profile failed: code %d", code)
	}
}

func TestCausalFusedProfile(t *testing.T) {
	out, code := runCmd(t, "-causal", "-fused-attention", "-iters", "1")
	if code != 0 || !strings.Contains(out, "causal=true") {
		t.Fatalf("causal profile failed: code %d", code)
	}
}

func TestTraceOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, code := runCmd(t, "-iters", "1", "-trace", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(events) < 50 {
		t.Fatalf("trace has only %d events", len(events))
	}
}

func TestMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "steps.jsonl")
	_, code := runCmd(t, "-iters", "2", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d JSONL records, want 3 (2 steps + final snapshot)", len(lines))
	}
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &final); err != nil {
		t.Fatalf("final record not valid JSON: %v", err)
	}
	if _, ok := final["final_metrics"]; !ok {
		t.Fatalf("last record is not the registry snapshot: %s", lines[2])
	}
	for i, line := range lines[:2] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
		if rec["step"] != float64(i+1) {
			t.Fatalf("line %d has step %v", i+1, rec["step"])
		}
		if rec["loss"] == float64(0) || rec["tokens_per_sec"] == float64(0) {
			t.Fatalf("line %d missing loss or tokens/s: %s", i+1, line)
		}
		cats, ok := rec["categories"].([]any)
		if !ok || len(cats) == 0 {
			t.Fatalf("line %d has no categories", i+1)
		}
		first := cats[0].(map[string]any)
		for _, key := range []string{"achieved_gflops", "achieved_gbs", "time_ms"} {
			if _, ok := first[key]; !ok {
				t.Fatalf("category row missing %q: %v", key, first)
			}
		}
	}
}

func TestDebugAddr(t *testing.T) {
	out, code := runCmd(t, "-iters", "1", "-debug-addr", "127.0.0.1:0")
	if code != 0 || !strings.Contains(out, "debug server: http://127.0.0.1:") {
		t.Fatalf("debug server did not start: code %d\n%s", code, out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBadConfig(t *testing.T) {
	if _, code := runCmd(t, "-dmodel", "7", "-heads", "2"); code == 0 {
		t.Fatal("indivisible d_model must fail")
	}
}

func TestBadMode(t *testing.T) {
	if _, code := runCmd(t, "-mode", "predict"); code == 0 {
		t.Fatal("unknown mode must fail")
	}
}
