package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	if code != 0 {
		t.Logf("stderr: %s", errOut.String())
	}
	return out.String(), code
}

func TestPretrainProfile(t *testing.T) {
	out, code := runCmd(t, "-iters", "1")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"parameters", "iteration 1: loss", "kernel profile", "GEMM share", "LAMBStage1"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
}

func TestFinetuneProfile(t *testing.T) {
	out, code := runCmd(t, "-mode", "finetune", "-iters", "1")
	if code != 0 || !strings.Contains(out, "span loss") {
		t.Fatalf("finetune profile failed: code %d", code)
	}
}

func TestMixedPrecisionProfile(t *testing.T) {
	out, code := runCmd(t, "-mp", "-iters", "1")
	if code != 0 || !strings.Contains(out, "mixed-precision=true") {
		t.Fatalf("MP profile failed: code %d", code)
	}
}

func TestCausalFusedProfile(t *testing.T) {
	out, code := runCmd(t, "-causal", "-fused-attention", "-iters", "1")
	if code != 0 || !strings.Contains(out, "causal=true") {
		t.Fatalf("causal profile failed: code %d", code)
	}
}

func TestTraceOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, code := runCmd(t, "-iters", "1", "-trace", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(events) < 50 {
		t.Fatalf("trace has only %d events", len(events))
	}
}

func TestBadConfig(t *testing.T) {
	if _, code := runCmd(t, "-dmodel", "7", "-heads", "2"); code == 0 {
		t.Fatal("indivisible d_model must fail")
	}
}

func TestBadMode(t *testing.T) {
	if _, code := runCmd(t, "-mode", "predict"); code == 0 {
		t.Fatal("unknown mode must fail")
	}
}
