// Command bertprof runs real BERT iterations on the pure-Go engine and
// prints a rocProf-style kernel profile: per-category kernel counts,
// wall-clock time, FLOPs, bytes, arithmetic intensity, and runtime shares
// — the reduced-scale counterpart of the paper's Section 3 measurements.
//
// Usage:
//
//	bertprof [-layers N] [-dmodel D] [-heads H] [-dff F] [-vocab V]
//	         [-b B] [-n SEQ] [-iters I] [-mp] [-checkpoint K]
//	         [-causal] [-fused-attention] [-mode pretrain|finetune]
//	         [-trace FILE] [-seed S]
//	         [-metrics-jsonl FILE] [-debug-addr HOST:PORT]
//
// -metrics-jsonl streams one JSON record per training step (loss,
// tokens/s, per-category achieved GFLOP/s and GB/s against the MI100
// roofline); -debug-addr serves live Prometheus-text runtime counters,
// expvar, and pprof while the run is in flight.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/device"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/obs"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/runutil"
	"demystbert/internal/tensor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	layers := fs.Int("layers", 2, "Transformer layer count (N)")
	dmodel := fs.Int("dmodel", 64, "hidden dimension (d_model)")
	heads := fs.Int("heads", 4, "attention heads (h)")
	dff := fs.Int("dff", 256, "intermediate dimension (d_ff)")
	vocab := fs.Int("vocab", 1000, "vocabulary size")
	b := fs.Int("b", 4, "mini-batch size (B)")
	n := fs.Int("n", 32, "sequence length (n)")
	iters := fs.Int("iters", 2, "training iterations to profile")
	mp := fs.Bool("mp", false, "mixed precision: FP16 activation storage + loss scaling")
	checkpoint := fs.Int("checkpoint", 0, "activation checkpointing segment length (0 = off)")
	causal := fs.Bool("causal", false, "decoder-style (causal) attention")
	fused := fs.Bool("fused-attention", false, "fuse the scale/mask/softmax kernels")
	mode := fs.String("mode", "pretrain", "pretrain or finetune")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the kernel timeline to this path")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	metricsPath := fs.String("metrics-jsonl", "", "write one JSON telemetry record per training step to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Ctrl-C used to truncate the metrics JSONL and Chrome trace
	// mid-write; every exit path (normal return or SIGINT/SIGTERM) now
	// funnels through one LIFO cleanup list.
	sd := runutil.Install(stderr)
	defer sd.Drain()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(stderr, "bertprof: %v\n", err)
			return 2
		}
		sd.Defer("debug server", func() { srv.ShutdownTimeout(2 * time.Second) })
		fmt.Fprintf(stdout, "debug server: http://%s/metrics\n", srv.Addr)
	}
	var emitter *obs.StepEmitter
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "bertprof: %v\n", err)
			return 2
		}
		em := obs.NewStepEmitter(f, device.MI100().Peaks())
		sd.Defer("metrics jsonl", func() {
			if err := em.EmitFinal(obs.Default); err != nil {
				fmt.Fprintf(stderr, "bertprof: metrics final: %v\n", err)
			}
			f.Close()
		})
		emitter = em
	}

	cfg := model.Config{
		Vocab:          *vocab,
		MaxPos:         *n,
		NumLayers:      *layers,
		DModel:         *dmodel,
		Heads:          *heads,
		DFF:            *dff,
		DropProb:       0.1,
		Causal:         *causal,
		FusedAttention: *fused,
	}
	m, err := model.New(cfg, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "bertprof: %v\n", err)
		return 2
	}
	m.CheckpointEvery = *checkpoint

	fmt.Fprintf(stdout, "BERT N=%d d_model=%d h=%d d_ff=%d vocab=%d: %d parameters\n",
		cfg.NumLayers, cfg.DModel, cfg.Heads, cfg.DFF, cfg.Vocab, m.NumParams())
	fmt.Fprintf(stdout, "workload: B=%d n=%d (%d tokens/iteration), mixed-precision=%v, checkpoint=%d, causal=%v\n\n",
		*b, *n, *b**n, *mp, *checkpoint, *causal)

	gen := data.NewGenerator(cfg.Vocab, 0.15, *seed+1)
	ctx := &nn.Ctx{Prof: profile.New(), RNG: tensor.NewRNG(*seed + 2), Train: true, MixedPrecision: *mp}

	// The Chrome trace is written through one idempotent closure shared
	// by the normal exit path and the signal handler, so an interrupted
	// run leaves a loadable (partial) trace instead of nothing.
	writeTrace := func() error { return nil }
	if *tracePath != "" {
		traceDone := false
		writeTrace = func() error {
			if traceDone {
				return nil
			}
			traceDone = true
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "bertprof: %v\n", err)
				return err
			}
			defer f.Close()
			if err := ctx.Prof.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(stderr, "bertprof: writing trace: %v\n", err)
				return err
			}
			fmt.Fprintf(stdout, "Chrome trace written to %s (open in chrome://tracing or Perfetto)\n", *tracePath)
			return nil
		}
		sd.Defer("chrome trace", func() { writeTrace() })
	}
	opt := optim.NewLAMB(0.01)
	scaler := optim.NewDynamicLossScaler()

	// step runs one full iteration; i >= 1 marks a measured step whose
	// telemetry (loss, tokens/s, per-category achieved rates over the
	// step's own event suffix) goes to the JSONL emitter.
	step := func(i int, stepFn func() float64, params []*nn.Param, zero func()) float64 {
		evBase := ctx.Prof.KernelCount()
		start := time.Now()
		if *mp {
			scaler.Arm(ctx)
		}
		loss := stepFn()
		if *mp {
			if scaler.UnscaleAndCheck(params) {
				opt.Step(ctx, params)
			}
		} else {
			opt.Step(ctx, params)
		}
		zero()
		if emitter != nil && i >= 1 {
			sum := profile.Summarize(ctx.Prof.Events()[evBase:])
			if err := emitter.EmitStep(i, loss, *b**n, time.Since(start), sum); err != nil {
				fmt.Fprintf(stderr, "bertprof: metrics emit: %v\n", err)
			}
		}
		return loss
	}

	switch *mode {
	case "pretrain":
		// Warm-up iteration, as the paper does before profiling.
		warm := gen.Next(*b, *n)
		step(0, func() float64 { return m.Step(ctx, warm) }, m.Params(), m.ZeroGrads)
		ctx.Prof.Reset()

		for i := 0; i < *iters; i++ {
			batch := gen.Next(*b, *n)
			loss := step(i+1, func() float64 { return m.Step(ctx, batch) }, m.Params(), m.ZeroGrads)
			fmt.Fprintf(stdout, "iteration %d: loss %.4f (%d masked tokens)\n", i+1, loss, batch.MaskedCount())
		}
	case "finetune":
		f := model.NewFineTuner(m, *seed+3)
		warm := gen.NextQA(*b, *n)
		step(0, func() float64 { return f.Step(ctx, warm) }, f.Params(), f.ZeroGrads)
		ctx.Prof.Reset()

		for i := 0; i < *iters; i++ {
			batch := gen.NextQA(*b, *n)
			loss := step(i+1, func() float64 { return f.Step(ctx, batch) }, f.Params(), f.ZeroGrads)
			fmt.Fprintf(stdout, "iteration %d: span loss %.4f\n", i+1, loss)
		}
	default:
		fmt.Fprintf(stderr, "bertprof: unknown mode %q (pretrain|finetune)\n", *mode)
		return 2
	}

	fmt.Fprintln(stdout)
	sum := ctx.Prof.Summarize()
	sum.WriteReport(stdout, fmt.Sprintf("kernel profile (%d iterations)", *iters))
	fmt.Fprintf(stdout, "\nGEMM share of wall time: %.1f%%\n", 100*sum.GEMMShare())
	if *mp && scaler.Skipped > 0 {
		fmt.Fprintf(stdout, "loss scaler skipped %d step(s); scale now %.0f\n", scaler.Skipped, scaler.Scale)
	}

	if err := writeTrace(); err != nil {
		return 2
	}
	return 0
}
