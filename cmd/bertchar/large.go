package main

// The -large mode: one honest BERT-Large pre-training iteration executed
// for real on the pure-Go engine, scaled to laptop-class memory by the
// internal/memscale techniques — gradient accumulation down to a
// micro-batch, virtual optimizer-state sharding with the m/v shards
// spilled to a disk arena, and activation-checkpoint spill — all under a
// GOMEMLIMIT below the unspilled working set. The measured per-category
// step breakdown (GEMM / attention / LN+GeLU / optimizer / spill) is
// printed side-by-side with the calibrated analytical model's prediction
// for the same workload (the repo's stand-in for the paper's published
// BERT-Large breakdown; the DESIGN.md §15 table pairs both with the
// paper's numbers), and the measured peak RSS is cross-checked against
// the opgraph capacity model's scaled footprint.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"demystbert"
	"demystbert/internal/data"
	"demystbert/internal/memscale"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/obs"
	"demystbert/internal/opgraph"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// largeFlags carries the -large mode's knobs.
type largeFlags struct {
	layers     int // 0 = the full 24; reduced values are the CI smoke
	b          int // global batch, reached via accumulation
	accum      int
	seq        int
	shards     int
	ckptEvery  int
	memlimitMB int
	spillDir   string
	jsonOut    string
}

// largeCategories is the fixed presentation order of the breakdown.
var largeCategories = []string{"GEMM", "Attention", "LN+GeLU", "Optimizer", "Spill", "Other"}

// categoryOf maps one profiled kernel event onto the -large breakdown.
// Spill kernels are recognized by name (they record under CatOther with
// a "spill_" prefix), everything else by its operator category.
func categoryOf(e profile.Event) string {
	if strings.HasPrefix(e.Kernel, "spill_") {
		return "Spill"
	}
	switch e.Category {
	case profile.CatLinear, profile.CatAttnBGEMM, profile.CatFCGEMM:
		return "GEMM"
	case profile.CatScaleMaskSM:
		return "Attention"
	case profile.CatGeLU, profile.CatDRRCLN:
		return "LN+GeLU"
	case profile.CatLAMBStage1, profile.CatLAMBStage2, profile.CatOptimizer:
		return "Optimizer"
	default:
		return "Other"
	}
}

// modeledShares returns the analytical model's category shares for the
// same workload, in largeCategories order (Spill is 0: the model assumes
// device-resident activations).
func modeledShares(w opgraph.Workload, dev demystbert.Device) map[string]float64 {
	r := demystbert.Characterize(w, dev)
	return map[string]float64{
		"GEMM": r.CategoryShare(profile.CatLinear) +
			r.CategoryShare(profile.CatAttnBGEMM) +
			r.CategoryShare(profile.CatFCGEMM),
		"Attention": r.CategoryShare(profile.CatScaleMaskSM),
		"LN+GeLU":   r.CategoryShare(profile.CatGeLU) + r.CategoryShare(profile.CatDRRCLN),
		"Optimizer": r.CategoryShare(profile.CatLAMBStage1) +
			r.CategoryShare(profile.CatLAMBStage2) +
			r.CategoryShare(profile.CatOptimizer),
		"Spill": 0,
		"Other": r.CategoryShare(profile.CatEmbedding) +
			r.CategoryShare(profile.CatOutput) +
			r.CategoryShare(profile.CatOther),
	}
}

// largeReport is the machine-readable breakdown -breakdown-json emits —
// the source of the DESIGN.md §15 measured column.
type largeReport struct {
	Layers int   `json:"layers"`
	DModel int   `json:"dmodel"`
	Heads  int   `json:"heads"`
	DFF    int   `json:"dff"`
	Vocab  int   `json:"vocab"`
	Params int64 `json:"params"`

	B          int   `json:"b"`
	MicroB     int   `json:"micro_b"`
	Accum      int   `json:"accum"`
	Seq        int   `json:"seq"`
	Shards     int   `json:"shards"`
	CkptEvery  int   `json:"ckpt_every"`
	MemLimitMB int64 `json:"memlimit_mb"`

	Loss   float64 `json:"loss"`
	WallMS float64 `json:"wall_ms"`
	FwdBwd float64 `json:"fwdbwd_ms"`
	OptMS  float64 `json:"opt_ms"`

	Categories []largeCat `json:"categories"`

	SpillWrittenBytes int64   `json:"spill_written_bytes"`
	SpillReadBytes    int64   `json:"spill_read_bytes"`
	SpillStallMS      float64 `json:"spill_stall_ms"`
	ShardSwaps        int64   `json:"shard_swaps"`

	PeakRSSBytes         int64 `json:"peak_rss_bytes"`
	ModeledResidentBytes int64 `json:"modeled_resident_bytes"`
	ModeledUnscaledBytes int64 `json:"modeled_unscaled_bytes"`
}

type largeCat struct {
	Name          string  `json:"name"`
	MeasuredMS    float64 `json:"measured_ms"`
	MeasuredShare float64 `json:"measured_share"`
	ModeledShare  float64 `json:"modeled_share"`
}

// peakRSSBytes reads the process's high-water resident set from the
// kernel (VmHWM), falling back to the Go runtime's OS-reserved total
// where /proc is unavailable.
func peakRSSBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				f := strings.Fields(rest)
				if len(f) >= 1 {
					if kb, err := strconv.ParseInt(f[0], 10, 64); err == nil {
						return kb << 10
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

// runLarge executes the honest iteration and reports.
func runLarge(stdout io.Writer, lf *largeFlags, dev demystbert.Device) error {
	cfg := model.BERTLarge()
	if lf.layers > 0 {
		cfg.NumLayers = lf.layers
	}
	switch {
	case lf.accum < 1 || lf.b%lf.accum != 0:
		return fmt.Errorf("-accum %d must divide -large-b %d", lf.accum, lf.b)
	case lf.shards < 1:
		return fmt.Errorf("-shards must be >= 1, got %d", lf.shards)
	case lf.seq > cfg.MaxPos:
		return fmt.Errorf("-large-seq %d exceeds max position %d", lf.seq, cfg.MaxPos)
	}
	micro := lf.b / lf.accum

	w := opgraph.Workload{
		Cfg: cfg, B: lf.b, SeqLen: lf.seq,
		Precision: opgraph.FP32, CheckpointEvery: lf.ckptEvery,
	}
	full := opgraph.Footprint(w)
	scaled := opgraph.ScaledFootprint(w, opgraph.MemScale{
		MicroB: micro, Shards: lf.shards, SpillCkpts: true,
	})

	if lf.memlimitMB > 0 {
		limit := int64(lf.memlimitMB) << 20
		if limit >= full.Total() {
			fmt.Fprintf(stdout, "note: GOMEMLIMIT %d MiB is not below the unspilled working set (%.0f MiB)\n",
				lf.memlimitMB, mib(full.Total()))
		}
		debug.SetMemoryLimit(limit)
	}

	fmt.Fprintf(stdout, "BERT-Large for real: N=%d d_model=%d h=%d d_ff=%d vocab=%d (%.0fM params)\n",
		cfg.NumLayers, cfg.DModel, cfg.Heads, cfg.DFF, cfg.Vocab, float64(cfg.ParamCount())/1e6)
	fmt.Fprintf(stdout, "memory plan: B=%d as %d micro-batches of %d, n=%d, ckpt every %d layers (spilled), "+
		"%d virtual optimizer shards; modeled resident %.0f MiB vs %.0f MiB unspilled, GOMEMLIMIT %d MiB\n",
		lf.b, lf.accum, micro, lf.seq, lf.ckptEvery, lf.shards,
		mib(scaled.Total()), mib(full.Total()), lf.memlimitMB)

	m, err := model.New(cfg, 42)
	if err != nil {
		return err
	}
	m.CheckpointEvery = lf.ckptEvery
	arena, err := memscale.NewArena(lf.spillDir)
	if err != nil {
		return err
	}
	defer arena.Close()
	m.CkptSpill = memscale.NewActSpill(arena)

	opt := optim.NewLAMB(0.01)
	sh, err := memscale.NewSharded(memscale.WrapLAMB(opt), m.Params(), lf.shards, nil)
	if err != nil {
		return err
	}
	sh.SetArena(arena)

	wBefore, rBefore, stBefore := memscale.SpillCounters()
	ctx := &nn.Ctx{Prof: profile.New(), RNG: tensor.NewRNG(43), Train: true}
	batch := data.NewGenerator(cfg.Vocab, 0.15, 44).Next(lf.b, lf.seq)

	start := time.Now()
	loss := m.StepAccum(ctx, batch, lf.accum)
	fwdbwd := time.Since(start)
	optStart := time.Now()
	if err := sh.Step(ctx, m.Params()); err != nil {
		return err
	}
	m.ZeroGrads()
	optDur := time.Since(optStart)
	wall := time.Since(start)

	fmt.Fprintf(stdout, "loss %.4f  wall %v (fwd+bwd %v, optimizer %v)\n",
		loss, wall.Round(time.Millisecond), fwdbwd.Round(time.Millisecond), optDur.Round(time.Millisecond))

	// Measured per-category breakdown over every profiled kernel of the
	// iteration, next to the calibrated analytical model's shares for the
	// same workload.
	events := ctx.Prof.Events()
	measured := make(map[string]time.Duration)
	var profTotal time.Duration
	for _, e := range events {
		measured[categoryOf(e)] += e.Duration
		profTotal += e.Duration
	}
	modeled := modeledShares(w, dev)

	rep := &largeReport{
		Layers: cfg.NumLayers, DModel: cfg.DModel, Heads: cfg.Heads,
		DFF: cfg.DFF, Vocab: cfg.Vocab, Params: int64(cfg.ParamCount()),
		B: lf.b, MicroB: micro, Accum: lf.accum, Seq: lf.seq,
		Shards: lf.shards, CkptEvery: lf.ckptEvery, MemLimitMB: int64(lf.memlimitMB),
		Loss:   loss,
		WallMS: float64(wall) / float64(time.Millisecond),
		FwdBwd: float64(fwdbwd) / float64(time.Millisecond),
		OptMS:  float64(optDur) / float64(time.Millisecond),
	}

	fmt.Fprintf(stdout, "%-12s %12s %10s %16s\n", "category", "measured", "share", "modeled(paper)")
	for _, name := range largeCategories {
		d := measured[name]
		share := 0.0
		if profTotal > 0 {
			share = float64(d) / float64(profTotal)
		}
		mod := "-"
		if !(name == "Spill" && modeled[name] == 0) {
			mod = fmt.Sprintf("%5.1f%%", 100*modeled[name])
		}
		fmt.Fprintf(stdout, "%-12s %12v %9.1f%% %16s\n",
			name, d.Round(time.Millisecond), 100*share, mod)
		rep.Categories = append(rep.Categories, largeCat{
			Name: name, MeasuredMS: float64(d) / float64(time.Millisecond),
			MeasuredShare: share, ModeledShare: modeled[name],
		})
	}

	wAfter, rAfter, stAfter := memscale.SpillCounters()
	rep.SpillWrittenBytes = wAfter - wBefore
	rep.SpillReadBytes = rAfter - rBefore
	rep.SpillStallMS = float64(stAfter-stBefore) / float64(time.Millisecond)
	if c, ok := obs.Default.Find("memscale_shard_swaps_total"); ok {
		rep.ShardSwaps = int64(c.Value)
	}
	fmt.Fprintf(stdout, "spill: wrote %.1f MiB, read %.1f MiB, stall %.0fms, %d shard swaps\n",
		mib(rep.SpillWrittenBytes), mib(rep.SpillReadBytes), rep.SpillStallMS, rep.ShardSwaps)

	// Capacity-model cross-check: the kernel's high-water RSS against the
	// opgraph scaled footprint. RSS additionally carries the Go runtime,
	// GEMM pack caches, and allocator slack, so the ratio is reported
	// rather than asserted.
	rep.PeakRSSBytes = peakRSSBytes()
	rep.ModeledResidentBytes = scaled.Total()
	rep.ModeledUnscaledBytes = full.Total()
	ratio := float64(rep.PeakRSSBytes) / float64(rep.ModeledResidentBytes)
	fmt.Fprintf(stdout, "peak RSS %.0f MiB vs modeled resident %.0f MiB (x%.2f); unscaled model %.0f MiB\n",
		mib(rep.PeakRSSBytes), mib(rep.ModeledResidentBytes), ratio, mib(rep.ModeledUnscaledBytes))

	if lf.jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(lf.jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", lf.jsonOut)
	}
	return nil
}
