// Command bertchar regenerates the paper's single-device characterization
// artifacts — Table 2b and Figures 3, 4, 6, 7, 8, 9, 12a, 12b, the
// checkpointing study, the NMC study, the Section 7 run-mode comparison,
// and the Table 1 takeaway checks — from the calibrated analytical model.
//
// Usage:
//
//	bertchar [-artifact all|table2b|fig3|...|takeaways]
//	         [-model large|base|megatron|gpt]
//	         [-compute X] [-bandwidth X]
//	bertchar -export json|csv [-phase 1|2] [-b N] [-mp]
//	bertchar -steps N [-metrics-jsonl FILE] [-debug-addr HOST:PORT]
//	bertchar -audit [-audit-full]
//
// The -compute and -bandwidth flags scale the device model to project
// hypothetical accelerator improvements (Section 5.1); -export emits one
// workload's machine-readable breakdown for plotting pipelines (with the
// live runtime-counter snapshot embedded).
//
// -steps runs a reduced-scale characterization for real on the pure-Go
// engine: each training step emits one JSON line of telemetry (loss,
// tokens/s, per-category achieved GFLOP/s and GB/s against the device
// roofline) to -metrics-jsonl, while -debug-addr serves the runtime
// counters (pack-cache hit rate, worker-pool dispatch/steal counts,
// batched-GEMM routing) as Prometheus text plus expvar and pprof.
//
// -audit runs the cross-path numerics audit (internal/audit): every
// module and training step, forward+backward, through the cross product
// of GEMM path × worker count × mixed precision × checkpointing × fusion,
// differenced against the naive/serial oracle, plus gradient checks and
// fixed-seed determinism pins. Exits non-zero on any divergence.
// -audit-full runs the full matrix instead of the reduced sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demystbert"
	"demystbert/internal/audit"
	"demystbert/internal/data"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/obs"
	"demystbert/internal/optim"
	"demystbert/internal/profile"
	"demystbert/internal/report"
	"demystbert/internal/runutil"
	"demystbert/internal/tensor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertchar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	artifact := fs.String("artifact", "all", "artifact to render, or 'all'")
	modelName := fs.String("model", "large", "model config: large, base, megatron, or gpt")
	computeX := fs.Float64("compute", 1, "scale device compute throughput")
	bwX := fs.Float64("bandwidth", 1, "scale device memory bandwidth")
	export := fs.String("export", "", "export one workload's breakdown as 'json' or 'csv' instead of rendering artifacts")
	phase := fs.Int("phase", 1, "pre-training phase for -export (1: n=128, 2: n=512)")
	batch := fs.Int("b", 32, "mini-batch size for -export")
	mp := fs.Bool("mp", false, "mixed precision for -export")
	steps := fs.Int("steps", 0, "run this many reduced-scale real training steps with live telemetry (defaults to 3 when -metrics-jsonl is set)")
	metricsPath := fs.String("metrics-jsonl", "", "write one JSON telemetry record per live step to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	auditRun := fs.Bool("audit", false, "run the cross-path numerics audit and exit (non-zero on divergence)")
	auditFull := fs.Bool("audit-full", false, "with -audit, run the full mode matrix instead of the reduced sweep")
	large := fs.Bool("large", false, "execute one honest memory-scaled BERT-Large training iteration for real and report the per-category breakdown")
	var lf largeFlags
	fs.IntVar(&lf.layers, "large-layers", 0, "with -large: override the layer count (0 = the full 24; reduced values are the CI smoke)")
	fs.IntVar(&lf.b, "large-b", 8, "with -large: global batch size, reached via accumulation")
	fs.IntVar(&lf.accum, "accum", 8, "with -large: accumulation micro-steps (micro-batch = large-b/accum)")
	fs.IntVar(&lf.seq, "large-seq", 128, "with -large: sequence length (128 = pre-training phase 1)")
	fs.IntVar(&lf.shards, "shards", 8, "with -large: virtual optimizer-state shards (1 = unsharded)")
	fs.IntVar(&lf.ckptEvery, "ckpt-every", 6, "with -large: activation-checkpoint segment length in layers")
	fs.IntVar(&lf.memlimitMB, "memlimit-mb", 5120, "with -large: GOMEMLIMIT in MiB (0 = unlimited)")
	fs.StringVar(&lf.spillDir, "spill-dir", "", "with -large: directory for the spill arena (default: system temp)")
	fs.StringVar(&lf.jsonOut, "breakdown-json", "", "with -large: write the measured-vs-modeled breakdown JSON here")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *steps == 0 && *metricsPath != "" {
		*steps = 3
	}

	if *auditRun {
		divs := audit.RunSweep(stdout, !*auditFull)
		if len(divs) > 0 {
			fmt.Fprintf(stderr, "bertchar: audit found %d divergences\n", len(divs))
			return 1
		}
		fmt.Fprintln(stdout, "audit: all execution paths agree")
		return 0
	}

	// One LIFO cleanup list shared by normal return and SIGINT/SIGTERM,
	// so an interrupt flushes the metrics JSONL and drains the debug
	// server instead of truncating them mid-write.
	sd := runutil.Install(stderr)
	defer sd.Drain()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
		sd.Defer("debug server", func() { srv.ShutdownTimeout(2 * time.Second) })
		fmt.Fprintf(stdout, "debug server: http://%s/metrics\n", srv.Addr)
	}

	var cfg demystbert.Config
	switch *modelName {
	case "large":
		cfg = demystbert.BERTLarge()
	case "base":
		cfg = demystbert.BERTBase()
	case "megatron":
		cfg = demystbert.MegatronBERT()
	case "gpt":
		cfg = demystbert.GPTMedium()
	default:
		fmt.Fprintf(stderr, "bertchar: unknown model %q\n", *modelName)
		return 2
	}

	dev := demystbert.MI100()
	if *computeX != 1 || *bwX != 1 {
		dev = dev.Scale(*computeX, *bwX, 1)
		fmt.Fprintf(stdout, "device: %s (compute x%.2f, bandwidth x%.2f)\n", dev.Name, *computeX, *bwX)
	}

	if *large {
		if err := runLarge(stdout, &lf, dev); err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
		return 0
	}

	if *steps > 0 {
		if err := runLive(stdout, sd, *steps, *metricsPath, *mp, dev); err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
		return 0
	}

	if *export != "" {
		prec := demystbert.FP32
		if *mp {
			prec = demystbert.Mixed
		}
		w := demystbert.Phase1(cfg, *batch, prec)
		if *phase == 2 {
			w = demystbert.Phase2(cfg, *batch, prec)
		}
		r := demystbert.Characterize(w, dev)
		var err error
		switch *export {
		case "json":
			err = report.WriteJSONExport(stdout, report.ExportWithRuntime(r, obs.Default.Snapshot()))
		case "csv":
			err = report.WriteCSV(stdout, r)
		default:
			err = fmt.Errorf("unknown export format %q (json|csv)", *export)
		}
		if err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
		return 0
	}

	artifacts := demystbert.Artifacts()
	if *artifact != "all" {
		artifacts = []string{*artifact}
	}
	for _, a := range artifacts {
		if err := demystbert.WriteArtifact(stdout, a, cfg, dev); err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
	}
	return 0
}

// runLive trains a reduced-scale BERT for real on the pure-Go engine and
// emits one telemetry record per step: the live counterpart of the
// analytical characterization, sharing its JSONL schema and the device
// roofline the achieved rates are compared against.
func runLive(stdout io.Writer, sd *runutil.Shutdown, steps int, metricsPath string, mp bool, dev demystbert.Device) error {
	cfg := model.Config{
		Vocab:     1000,
		MaxPos:    32,
		NumLayers: 2,
		DModel:    64,
		Heads:     4,
		DFF:       256,
		DropProb:  0.1,
	}
	const b, n, seed = 4, 32, 42
	m, err := model.New(cfg, seed)
	if err != nil {
		return err
	}

	out := stdout
	var finalReg *obs.Registry // nil keeps stdout clean: flush only
	var metricsFile *os.File
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		out, metricsFile, finalReg = f, f, obs.Default
	}
	emitter := obs.NewStepEmitter(out, dev.Peaks())
	sd.Defer("metrics jsonl", func() {
		if err := emitter.EmitFinal(finalReg); err != nil {
			fmt.Fprintf(os.Stderr, "bertchar: metrics final: %v\n", err)
		}
		if metricsFile != nil {
			metricsFile.Close()
		}
	})

	fmt.Fprintf(stdout, "live run: BERT N=%d d_model=%d h=%d d_ff=%d, B=%d n=%d, %d steps (mixed-precision=%v)\n",
		cfg.NumLayers, cfg.DModel, cfg.Heads, cfg.DFF, b, n, steps, mp)

	gen := data.NewGenerator(cfg.Vocab, 0.15, seed+1)
	ctx := &nn.Ctx{Prof: profile.New(), RNG: tensor.NewRNG(seed + 2), Train: true, MixedPrecision: mp}
	opt := optim.NewLAMB(0.01)
	scaler := optim.NewDynamicLossScaler()

	// Warm-up step (untimed, not emitted) so pack caches and the worker
	// pool are hot before the first measured step.
	warm := gen.Next(b, n)
	if mp {
		scaler.Arm(ctx)
	}
	m.Step(ctx, warm)
	if !mp || scaler.UnscaleAndCheck(m.Params()) {
		opt.Step(ctx, m.Params())
	}
	m.ZeroGrads()
	ctx.Prof.Reset()

	for i := 1; i <= steps; i++ {
		evBase := ctx.Prof.KernelCount()
		start := time.Now()
		batch := gen.Next(b, n)
		if mp {
			scaler.Arm(ctx)
		}
		loss := m.Step(ctx, batch)
		if !mp || scaler.UnscaleAndCheck(m.Params()) {
			opt.Step(ctx, m.Params())
		}
		m.ZeroGrads()
		sum := profile.Summarize(ctx.Prof.Events()[evBase:])
		if err := emitter.EmitStep(i, loss, b*n, time.Since(start), sum); err != nil {
			return fmt.Errorf("metrics emit: %w", err)
		}
		fmt.Fprintf(stdout, "step %d: loss %.4f\n", i, loss)
	}

	// Close the loop on the runtime counters the debug endpoint serves.
	fmt.Fprintln(stdout)
	for _, name := range []string{
		"kernels_pack_cache_hits_total",
		"kernels_pack_cache_misses_total",
		"kernels_pack_cache_rebuilds_total",
		"kernels_pool_dispatches_total",
		"kernels_pool_steals_total",
		"kernels_batched_gemm_blocked_total",
		"kernels_batched_gemm_per_matrix_total",
	} {
		if metric, ok := obs.Default.Find(name); ok {
			fmt.Fprintf(stdout, "%s %.0f\n", name, metric.Value)
		}
	}
	return nil
}
