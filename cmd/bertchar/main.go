// Command bertchar regenerates the paper's single-device characterization
// artifacts — Table 2b and Figures 3, 4, 6, 7, 8, 9, 12a, 12b, the
// checkpointing study, the NMC study, the Section 7 run-mode comparison,
// and the Table 1 takeaway checks — from the calibrated analytical model.
//
// Usage:
//
//	bertchar [-artifact all|table2b|fig3|...|takeaways]
//	         [-model large|base|megatron|gpt]
//	         [-compute X] [-bandwidth X]
//	bertchar -export json|csv [-phase 1|2] [-b N] [-mp]
//
// The -compute and -bandwidth flags scale the device model to project
// hypothetical accelerator improvements (Section 5.1); -export emits one
// workload's machine-readable breakdown for plotting pipelines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"demystbert"
	"demystbert/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertchar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	artifact := fs.String("artifact", "all", "artifact to render, or 'all'")
	modelName := fs.String("model", "large", "model config: large, base, megatron, or gpt")
	computeX := fs.Float64("compute", 1, "scale device compute throughput")
	bwX := fs.Float64("bandwidth", 1, "scale device memory bandwidth")
	export := fs.String("export", "", "export one workload's breakdown as 'json' or 'csv' instead of rendering artifacts")
	phase := fs.Int("phase", 1, "pre-training phase for -export (1: n=128, 2: n=512)")
	batch := fs.Int("b", 32, "mini-batch size for -export")
	mp := fs.Bool("mp", false, "mixed precision for -export")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg demystbert.Config
	switch *modelName {
	case "large":
		cfg = demystbert.BERTLarge()
	case "base":
		cfg = demystbert.BERTBase()
	case "megatron":
		cfg = demystbert.MegatronBERT()
	case "gpt":
		cfg = demystbert.GPTMedium()
	default:
		fmt.Fprintf(stderr, "bertchar: unknown model %q\n", *modelName)
		return 2
	}

	dev := demystbert.MI100()
	if *computeX != 1 || *bwX != 1 {
		dev = dev.Scale(*computeX, *bwX, 1)
		fmt.Fprintf(stdout, "device: %s (compute x%.2f, bandwidth x%.2f)\n", dev.Name, *computeX, *bwX)
	}

	if *export != "" {
		prec := demystbert.FP32
		if *mp {
			prec = demystbert.Mixed
		}
		w := demystbert.Phase1(cfg, *batch, prec)
		if *phase == 2 {
			w = demystbert.Phase2(cfg, *batch, prec)
		}
		r := demystbert.Characterize(w, dev)
		var err error
		switch *export {
		case "json":
			err = report.WriteJSON(stdout, r)
		case "csv":
			err = report.WriteCSV(stdout, r)
		default:
			err = fmt.Errorf("unknown export format %q (json|csv)", *export)
		}
		if err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
		return 0
	}

	artifacts := demystbert.Artifacts()
	if *artifact != "all" {
		artifacts = []string{*artifact}
	}
	for _, a := range artifacts {
		if err := demystbert.WriteArtifact(stdout, a, cfg, dev); err != nil {
			fmt.Fprintf(stderr, "bertchar: %v\n", err)
			return 2
		}
	}
	return 0
}
