package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestRunSingleArtifact(t *testing.T) {
	out, _, code := runCmd(t, "-artifact", "fig3")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Ph1-B32-FP32") {
		t.Fatalf("fig3 output malformed:\n%s", out[:min(400, len(out))])
	}
}

func TestRunAllArtifacts(t *testing.T) {
	out, _, code := runCmd(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"Table 2b", "Figure 3", "Figure 12b", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-artifact output missing %q", want)
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	_, errOut, code := runCmd(t, "-artifact", "fig99")
	if code == 0 || !strings.Contains(errOut, "fig99") {
		t.Fatalf("unknown artifact: code %d, stderr %q", code, errOut)
	}
}

func TestRunUnknownModel(t *testing.T) {
	_, _, code := runCmd(t, "-model", "bogus")
	if code == 0 {
		t.Fatal("unknown model must fail")
	}
}

func TestRunDeviceScaling(t *testing.T) {
	out, _, code := runCmd(t, "-artifact", "fig3", "-compute", "2")
	if code != 0 || !strings.Contains(out, "compute x2.00") {
		t.Fatalf("scaled-device run failed: %d", code)
	}
}

func TestRunExportJSON(t *testing.T) {
	out, _, code := runCmd(t, "-export", "json", "-b", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if decoded["workload"] != "Ph1-B4-FP32" {
		t.Fatalf("workload %v", decoded["workload"])
	}
}

func TestRunExportCSV(t *testing.T) {
	out, _, code := runCmd(t, "-export", "csv", "-phase", "2", "-mp")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.HasPrefix(out, "workload,device,category") || !strings.Contains(out, "Ph2-B32-FP16") {
		t.Fatalf("CSV export malformed:\n%s", out[:min(200, len(out))])
	}
}

func TestRunExportBadFormat(t *testing.T) {
	_, _, code := runCmd(t, "-export", "xml")
	if code == 0 {
		t.Fatal("bad export format must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	_, _, code := runCmd(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("bad flag must fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
