package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestRunSingleArtifact(t *testing.T) {
	out, _, code := runCmd(t, "-artifact", "fig3")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Ph1-B32-FP32") {
		t.Fatalf("fig3 output malformed:\n%s", out[:min(400, len(out))])
	}
}

func TestRunAudit(t *testing.T) {
	out, errOut, code := runCmd(t, "-audit")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s\nstdout:\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "audit bert.step") || !strings.Contains(out, "all execution paths agree") {
		t.Fatalf("-audit output malformed:\n%s", out)
	}
	if strings.Contains(out, "DIVERGENCE") {
		t.Fatalf("-audit reported divergences:\n%s", out)
	}
}

func TestRunAllArtifacts(t *testing.T) {
	out, _, code := runCmd(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"Table 2b", "Figure 3", "Figure 12b", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-artifact output missing %q", want)
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	_, errOut, code := runCmd(t, "-artifact", "fig99")
	if code == 0 || !strings.Contains(errOut, "fig99") {
		t.Fatalf("unknown artifact: code %d, stderr %q", code, errOut)
	}
}

func TestRunUnknownModel(t *testing.T) {
	_, _, code := runCmd(t, "-model", "bogus")
	if code == 0 {
		t.Fatal("unknown model must fail")
	}
}

func TestRunDeviceScaling(t *testing.T) {
	out, _, code := runCmd(t, "-artifact", "fig3", "-compute", "2")
	if code != 0 || !strings.Contains(out, "compute x2.00") {
		t.Fatalf("scaled-device run failed: %d", code)
	}
}

func TestRunExportJSON(t *testing.T) {
	out, _, code := runCmd(t, "-export", "json", "-b", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if decoded["workload"] != "Ph1-B4-FP32" {
		t.Fatalf("workload %v", decoded["workload"])
	}
}

func TestRunExportCSV(t *testing.T) {
	out, _, code := runCmd(t, "-export", "csv", "-phase", "2", "-mp")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.HasPrefix(out, "workload,device,category") || !strings.Contains(out, "Ph2-B32-FP16") {
		t.Fatalf("CSV export malformed:\n%s", out[:min(200, len(out))])
	}
}

func TestRunExportJSONCarriesRuntime(t *testing.T) {
	out, _, code := runCmd(t, "-export", "json", "-b", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "runtime_metrics") {
		t.Fatal("JSON export must embed the runtime metric snapshot")
	}
}

func TestRunLiveSteps(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/steps.jsonl"
	out, _, code := runCmd(t, "-steps", "2", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "step 2: loss") {
		t.Fatalf("live run output missing step lines:\n%s", out)
	}
	// The run must report the engine counters the /metrics endpoint serves.
	for _, want := range []string{"kernels_pack_cache_", "kernels_pool_dispatches_total", "kernels_batched_gemm_"} {
		if !strings.Contains(out, want) {
			t.Errorf("live run output missing counter %q", want)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d JSONL records, want 3 (2 steps + final snapshot)", len(lines))
	}
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &final); err != nil {
		t.Fatalf("final record not valid JSON: %v", err)
	}
	if _, ok := final["final_metrics"]; !ok {
		t.Fatalf("last record is not the registry snapshot: %s", lines[2])
	}
	for i, line := range lines[:2] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
		if rec["step"] != float64(i+1) || rec["loss"] == float64(0) {
			t.Fatalf("line %d malformed: %s", i+1, line)
		}
	}
}

func TestRunMetricsImpliesSteps(t *testing.T) {
	path := t.TempDir() + "/steps.jsonl"
	out, _, code := runCmd(t, "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "3 steps") {
		t.Fatalf("-metrics-jsonl alone must default to 3 live steps:\n%s", out[:min(200, len(out))])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(data)), "\n")); n != 4 {
		t.Fatalf("%d JSONL records, want 4 (3 steps + final snapshot)", n)
	}
}

func TestRunDebugAddr(t *testing.T) {
	out, _, code := runCmd(t, "-steps", "1", "-debug-addr", "127.0.0.1:0")
	if code != 0 || !strings.Contains(out, "debug server: http://127.0.0.1:") {
		t.Fatalf("debug server did not start: code %d\n%s", code, out[:min(200, len(out))])
	}
}

func TestRunExportBadFormat(t *testing.T) {
	_, _, code := runCmd(t, "-export", "xml")
	if code == 0 {
		t.Fatal("bad export format must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	_, _, code := runCmd(t, "-no-such-flag")
	if code == 0 {
		t.Fatal("bad flag must fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
