// Command bertdist renders Figure 11's multi-device iteration breakdowns
// and supports custom data-parallel (including ZeRO-style) and
// tensor-slicing (including in-network AllReduce) configurations, plus
// hypothetical interconnect improvements (Sections 5, 6.2.3).
//
// Usage:
//
//	bertdist                       # the paper's five Fig. 11 bars
//	bertdist -dp 64 -b 32          # custom data-parallel profile
//	bertdist -dp 128 -zero         # ZeRO-style reduced-gradient DP
//	bertdist -ts 4 -b 32           # custom tensor-slicing profile
//	bertdist -ts 8 -in-network     # switch-resident AllReduce
//	bertdist -link 4               # 4x faster interconnect projection
//
// Beyond the analytical model, bertdist also runs *real* multi-process
// data-parallel training over loopback TCP (internal/distnet):
//
//	bertdist -launch 2 -steps 6            # fork 2 worker processes
//	bertdist -rank 0 -world 2 -addr H:P    # one worker, manual rendezvous
//	bertdist -bench-dist BENCH_dist.json   # measured-vs-modeled sweep
//
// -metrics-jsonl writes the modeled single-device iteration as one
// telemetry record in the shared per-step JSONL schema; -debug-addr
// serves the runtime counter registry, expvar, and pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demystbert"
	"demystbert/internal/dist"
	"demystbert/internal/obs"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
	"demystbert/internal/report"
	"demystbert/internal/runutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertdist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dp := fs.Int("dp", 0, "model D-way data parallelism (0 = off)")
	ts := fs.Int("ts", 0, "model m-way tensor slicing (0 = off)")
	b := fs.Int("b", 16, "per-device mini-batch size")
	mp := fs.Bool("mp", false, "mixed precision")
	linkX := fs.Float64("link", 1, "scale interconnect bandwidth")
	noOverlap := fs.Bool("no-overlap", false, "disable DP compute/comm overlap")
	zero := fs.Bool("zero", false, "with -dp: model ZeRO-style reduced-gradient DP")
	inNetwork := fs.Bool("in-network", false, "with -ts: model in-network AllReduce (Section 6.2.3)")
	metricsPath := fs.String("metrics-jsonl", "", "write the modeled per-device iteration as one JSON telemetry record to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	var tf trainFlags
	tf.register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tf.noOverlap = *noOverlap

	// Signal-safe cleanup: SIGINT/SIGTERM flushes the metrics file and
	// drains the debug server instead of truncating mid-write.
	sd := runutil.Install(stderr)
	defer sd.Drain()

	// Real multi-process training modes (internal/distnet) — see
	// distrun.go. Everything below stays the analytical model.
	switch {
	case tf.benchOut != "":
		return benchDist(&tf, stdout, stderr, sd)
	case tf.launch > 0:
		return launchLocal(&tf, stdout, stderr, sd)
	case tf.world > 0:
		return trainWorker(&tf, stdout, stderr, sd)
	}

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(stderr, "bertdist: %v\n", err)
			return 2
		}
		sd.Defer("debug server", func() { srv.ShutdownTimeout(2 * time.Second) })
		fmt.Fprintf(stdout, "debug server: http://%s/metrics\n", srv.Addr)
	}

	cfg := demystbert.BERTLarge()
	dev := demystbert.MI100().Scale(1, 1, *linkX)
	prec := demystbert.FP32
	if *mp {
		prec = demystbert.Mixed
	}
	w := demystbert.Phase1(cfg, *b, prec)

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "bertdist: %v\n", err)
			return 2
		}
		em := obs.NewStepEmitter(f, dev.Peaks())
		sd.Defer("metrics jsonl", func() {
			if err := em.EmitFinal(obs.Default); err != nil {
				fmt.Fprintf(stderr, "bertdist: metrics final: %v\n", err)
			}
			f.Close()
		})
		r := perfmodel.Run(opgraph.Build(w), dev)
		rec := report.StepRecordFromResult(1, r)
		if err := em.Emit(rec); err != nil {
			fmt.Fprintf(stderr, "bertdist: metrics emit: %v\n", err)
			return 2
		}
	}

	if *dp == 0 && *ts == 0 {
		report.Fig11(stdout, cfg, dev)
		return 0
	}

	print := func(p dist.Profile) {
		fmt.Fprintf(stdout, "%s (devices=%d): total %v\n", p.Name, p.Devices, p.Total.Round(time.Millisecond))
		for _, c := range []opgraph.LayerClass{
			opgraph.ClassTransformer, opgraph.ClassOutput,
			opgraph.ClassEmbedding, opgraph.ClassLAMB,
		} {
			fmt.Fprintf(stdout, "  %-14s %6.1f%%\n", c, 100*p.Share(c))
		}
		fmt.Fprintf(stdout, "  %-14s %6.1f%%", "Comm", 100*p.CommShare())
		if p.HiddenComm > 0 {
			fmt.Fprintf(stdout, " (+%v overlapped)", p.HiddenComm.Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}

	if *dp > 0 {
		r := perfmodel.Run(opgraph.Build(w), dev)
		if *zero {
			print(dist.ZeRO(fmt.Sprintf("ZeRO-%d B=%d", *dp, *b), r, *dp, dev))
		} else {
			print(dist.DataParallel(fmt.Sprintf("DP-%d B=%d", *dp, *b), r, *dp, !*noOverlap))
		}
	}
	if *ts > 0 {
		if *inNetwork {
			print(dist.TensorSlicingInNetwork(fmt.Sprintf("TS-%d-way B=%d (in-network)", *ts, *b), w, *ts, dev))
		} else {
			print(dist.TensorSlicing(fmt.Sprintf("TS-%d-way B=%d", *ts, *b), w, *ts, dev))
		}
	}
	return 0
}
