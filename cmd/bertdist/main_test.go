package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), code
}

func TestDefaultFig11(t *testing.T) {
	out, code := runCmd(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"Figure 11", "S1", "D1", "D2", "T1", "T2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig11 output missing %q", want)
		}
	}
}

func TestCustomDP(t *testing.T) {
	out, code := runCmd(t, "-dp", "64", "-b", "32", "-no-overlap")
	if code != 0 || !strings.Contains(out, "DP-64 B=32") || !strings.Contains(out, "Comm") {
		t.Fatalf("custom DP failed: code %d\n%s", code, out)
	}
}

func TestZeRO(t *testing.T) {
	out, code := runCmd(t, "-dp", "128", "-zero")
	if code != 0 || !strings.Contains(out, "ZeRO-128") {
		t.Fatalf("ZeRO run failed: code %d", code)
	}
}

func TestTensorSlicingInNetwork(t *testing.T) {
	ring, code := runCmd(t, "-ts", "8", "-b", "64")
	if code != 0 {
		t.Fatal("ring TS failed")
	}
	innet, code := runCmd(t, "-ts", "8", "-b", "64", "-in-network")
	if code != 0 || !strings.Contains(innet, "in-network") {
		t.Fatal("in-network TS failed")
	}
	// Both render a Comm line; the in-network variant's is smaller (spot
	// check on the rendered numbers would be brittle — just both present).
	if !strings.Contains(ring, "Comm") || !strings.Contains(innet, "Comm") {
		t.Fatal("missing Comm rows")
	}
}

func TestLinkScalingAndMP(t *testing.T) {
	out, code := runCmd(t, "-ts", "2", "-mp", "-link", "4")
	if code != 0 || !strings.Contains(out, "TS-2-way") {
		t.Fatalf("scaled-link MP TS failed: code %d", code)
	}
}

func TestMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "step.jsonl")
	_, code := runCmd(t, "-dp", "64", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if rec["step"] != float64(1) || rec["tokens_per_sec"] == float64(0) {
		t.Fatalf("modeled record malformed: %v", rec)
	}
	if cats, ok := rec["categories"].([]any); !ok || len(cats) == 0 {
		t.Fatalf("modeled record has no categories: %v", rec)
	}
}

func TestDebugAddr(t *testing.T) {
	out, code := runCmd(t, "-debug-addr", "127.0.0.1:0")
	if code != 0 || !strings.Contains(out, "debug server: http://127.0.0.1:") {
		t.Fatalf("debug server did not start: code %d\n%s", code, out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, code := runCmd(t, "-nope"); code == 0 {
		t.Fatal("bad flag must fail")
	}
}
