package main

import (
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"demystbert/internal/data"
	"demystbert/internal/ddp"
	"demystbert/internal/model"
)

// TestMain lets the launcher fork this test binary as a real worker
// process: forkWorld always passes the worker argv through the
// environment, and we re-enter run() with it before the test runner
// starts.
func TestMain(m *testing.M) {
	if raw := os.Getenv(workerArgsEnv); raw != "" {
		var args []string
		if err := json.Unmarshal([]byte(raw), &args); err != nil {
			os.Stderr.WriteString("bad " + workerArgsEnv + ": " + err.Error() + "\n")
			os.Exit(2)
		}
		os.Exit(run(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	if code != 0 {
		t.Logf("stderr:\n%s", errOut.String())
	}
	return out.String(), code
}

func TestDefaultFig11(t *testing.T) {
	out, code := runCmd(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"Figure 11", "S1", "D1", "D2", "T1", "T2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig11 output missing %q", want)
		}
	}
}

func TestCustomDP(t *testing.T) {
	out, code := runCmd(t, "-dp", "64", "-b", "32", "-no-overlap")
	if code != 0 || !strings.Contains(out, "DP-64 B=32") || !strings.Contains(out, "Comm") {
		t.Fatalf("custom DP failed: code %d\n%s", code, out)
	}
}

func TestZeRO(t *testing.T) {
	out, code := runCmd(t, "-dp", "128", "-zero")
	if code != 0 || !strings.Contains(out, "ZeRO-128") {
		t.Fatalf("ZeRO run failed: code %d", code)
	}
}

func TestTensorSlicingInNetwork(t *testing.T) {
	ring, code := runCmd(t, "-ts", "8", "-b", "64")
	if code != 0 {
		t.Fatal("ring TS failed")
	}
	innet, code := runCmd(t, "-ts", "8", "-b", "64", "-in-network")
	if code != 0 || !strings.Contains(innet, "in-network") {
		t.Fatal("in-network TS failed")
	}
	// Both render a Comm line; the in-network variant's is smaller (spot
	// check on the rendered numbers would be brittle — just both present).
	if !strings.Contains(ring, "Comm") || !strings.Contains(innet, "Comm") {
		t.Fatal("missing Comm rows")
	}
}

func TestLinkScalingAndMP(t *testing.T) {
	out, code := runCmd(t, "-ts", "2", "-mp", "-link", "4")
	if code != 0 || !strings.Contains(out, "TS-2-way") {
		t.Fatalf("scaled-link MP TS failed: code %d", code)
	}
}

func TestMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "step.jsonl")
	_, code := runCmd(t, "-dp", "64", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL records, want 2 (the step + final snapshot)", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if rec["step"] != float64(1) || rec["tokens_per_sec"] == float64(0) {
		t.Fatalf("modeled record malformed: %v", rec)
	}
	if cats, ok := rec["categories"].([]any); !ok || len(cats) == 0 {
		t.Fatalf("modeled record has no categories: %v", rec)
	}
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &final); err != nil {
		t.Fatalf("final record not valid JSON: %v", err)
	}
	if _, ok := final["final_metrics"]; !ok {
		t.Fatalf("last record is not the registry snapshot: %s", lines[1])
	}
}

func TestDebugAddr(t *testing.T) {
	out, code := runCmd(t, "-debug-addr", "127.0.0.1:0")
	if code != 0 || !strings.Contains(out, "debug server: http://127.0.0.1:") {
		t.Fatalf("debug server did not start: code %d\n%s", code, out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, code := runCmd(t, "-nope"); code == 0 {
		t.Fatal("bad flag must fail")
	}
}

// --- real multi-process training -------------------------------------

func TestLaunchTwoProcesses(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "agg.json")
	out, code := runCmd(t, "-launch", "2", "-steps", "6", "-train-b", "2", "-seq", "16",
		"-fixed-data", "-drop", "0", "-json", jsonOut)
	if code != 0 {
		t.Fatalf("launch exit code %d\n%s", code, out)
	}
	for _, want := range []string{"world=2", "rank 0:", "rank 1:", "loss fell"} {
		if !strings.Contains(out, want) {
			t.Errorf("launch output missing %q:\n%s", want, out)
		}
	}
	var results []map[string]any
	b, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &results); err != nil || len(results) != 2 {
		t.Fatalf("aggregate JSON malformed (%v): %s", err, b)
	}
	if results[1]["rank"] != float64(1) || results[0]["wire_bytes_per_step"] == float64(0) {
		t.Fatalf("aggregate JSON missing fields: %v", results)
	}
}

// Cross-process bitwise parity: two real OS processes training over TCP
// must land on exactly the parameters the in-process ddp trainer
// produces from the same seeds and data schedule.
func TestLaunchBitwiseMatchesInProcessDDP(t *testing.T) {
	const steps, seed, B, N = 3, 7, 2, 16
	params := filepath.Join(t.TempDir(), "params.bin")
	out, code := runCmd(t, "-launch", "2", "-steps", "3", "-train-b", "2", "-seq", "16",
		"-seed", "7", "-params-out", params)
	if code != 0 {
		t.Fatalf("launch exit code %d\n%s", code, out)
	}
	f, err := os.Open(params)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := model.Load(f)
	if err != nil {
		t.Fatal(err)
	}

	var tf trainFlags
	tf.trainB, tf.seq, tf.layers, tf.dmodel, tf.vocab, tf.drop = B, N, 2, 64, 1000, -1
	cfg := tf.modelConfig()
	ddpTr, err := ddp.NewTrainer(cfg, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ddpTr.Close()
	gen := data.NewGenerator(cfg.Vocab, 0.15, seed+1000003)
	for s := 0; s < steps; s++ {
		if _, err := ddpTr.Step([]*data.Batch{gen.Next(B, N), gen.Next(B, N)}); err != nil {
			t.Fatal(err)
		}
	}
	gp, wp := got.Params(), ddpTr.Replicas[0].Params()
	if len(gp) != len(wp) {
		t.Fatalf("param count %d vs %d", len(gp), len(wp))
	}
	for i := range gp {
		a, b := gp[i].Value.Data(), wp[i].Value.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s[%d]: cross-process %v vs in-process %v (bitwise divergence)",
					gp[i].Name, j, a[j], b[j])
			}
		}
	}
}

func TestWorkerBadConfigFails(t *testing.T) {
	// A worker whose rendezvous never appears must exit nonzero within
	// its timeout, not hang.
	done := make(chan int, 1)
	go func() {
		_, code := runCmd(t, "-rank", "1", "-world", "2", "-addr", "127.0.0.1:1",
			"-net-timeout", "700ms", "-steps", "1")
		done <- code
	}()
	select {
	case code := <-done:
		if code == 0 {
			t.Fatal("worker with dead rendezvous exited 0")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung past its handshake timeout")
	}
}

// SIGTERM to the launcher must drain: forward the signal to workers and
// exit 143 rather than leaving orphans.
func TestLaunchSIGTERMDrains(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-launch", "2", "-steps", "2000", "-train-b", "2", "-seq", "16", "-fixed-data"}
	encoded, _ := json.Marshal(args)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerArgsEnv+"="+string(encoded))
	var errOut strings.Builder
	cmd.Stderr = &errOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond) // let the ring come up and train
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatal("launcher did not exit after SIGTERM")
	}
	ee, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || ee.ExitStatus() != 143 {
		t.Fatalf("launcher exit status %v, want 143 (128+SIGTERM)\nstderr:\n%s",
			cmd.ProcessState, errOut.String())
	}
	if !strings.Contains(errOut.String(), "draining") {
		t.Fatalf("launcher did not announce its drain:\n%s", errOut.String())
	}
}

// TestWorkerSIGTERMCheckpointLoadable is the kill-mid-run regression: a
// worker SIGTERMed mid-training must still leave a complete, loadable
// -params-out checkpoint behind (write-to-temp + rename on the signal
// drain), never a truncated file.
func TestWorkerSIGTERMCheckpointLoadable(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	params := filepath.Join(t.TempDir(), "mid.bin")
	args := []string{"-rank", "0", "-world", "1", "-steps", "100000",
		"-train-b", "2", "-seq", "16", "-fixed-data", "-params-out", params}
	encoded, _ := json.Marshal(args)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerArgsEnv+"="+string(encoded))
	var errOut strings.Builder
	cmd.Stderr = &errOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond) // land mid-run, steps still flowing
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatal("worker did not exit after SIGTERM")
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || ws.ExitStatus() != 143 {
		t.Fatalf("worker exit status %v, want 143\nstderr:\n%s", cmd.ProcessState, errOut.String())
	}
	f, err := os.Open(params)
	if err != nil {
		t.Fatalf("checkpoint missing after SIGTERM: %v\nstderr:\n%s", err, errOut.String())
	}
	defer f.Close()
	if _, err := model.Load(f); err != nil {
		t.Fatalf("mid-run checkpoint not loadable: %v", err)
	}
	if leftovers, _ := filepath.Glob(params + ".tmp-*"); len(leftovers) != 0 {
		t.Fatalf("temp checkpoint files leaked: %v", leftovers)
	}
}

// TestLaunchZero1BitwiseMatchesUnsharded: two real processes training
// with ZeRO-1 optimizer-state sharding must land on exactly the weights
// of the replicated-optimizer run — the shard split, per-shard LAMB
// apply, and weight all-gather are bitwise transparent.
func TestLaunchZero1BitwiseMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.bin")
	sharded := filepath.Join(dir, "zero1.bin")
	if out, code := runCmd(t, "-launch", "2", "-steps", "3", "-train-b", "2", "-seq", "16",
		"-seed", "7", "-params-out", plain); code != 0 {
		t.Fatalf("plain launch exit %d\n%s", code, out)
	}
	if out, code := runCmd(t, "-launch", "2", "-steps", "3", "-train-b", "2", "-seq", "16",
		"-seed", "7", "-zero1", "-params-out", sharded); code != 0 {
		t.Fatalf("zero1 launch exit %d\n%s", code, out)
	}
	pb, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(sb) {
		t.Fatal("zero1 checkpoint differs from unsharded checkpoint (bitwise divergence)")
	}
}

func TestBenchDistWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("forks several process groups")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	stdout, code := runCmd(t, "-bench-dist", out, "-bench-worlds", "1,2",
		"-steps", "3", "-train-b", "2", "-seq", "16", "-fixed-data")
	if code != 0 {
		t.Fatalf("bench exit code %d\n%s", code, stdout)
	}
	var rep map[string]any
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	points, ok := rep["points"].([]any)
	if !ok || len(points) != 3 { // world 1 + world 2 × {overlap, sequential}
		t.Fatalf("want 3 sweep points, got %v", rep["points"])
	}
	for _, p := range points {
		pt := p.(map[string]any)
		meff := pt["measured_efficiency"].(float64)
		if meff <= 0 || math.IsNaN(meff) {
			t.Fatalf("bad measured efficiency in %v", pt)
		}
		if pt["modeled_ideal"].(map[string]any)["efficiency"].(float64) <= 0 {
			t.Fatalf("bad modeled efficiency in %v", pt)
		}
	}
}
