package main

// Real multi-process data-parallel training (internal/distnet), driven
// from the same binary that renders the analytical Fig. 11 profiles:
//
//	bertdist -launch 2 -steps 6            # fork 2 loopback ranks, train
//	bertdist -rank 1 -world 2 -addr H:P    # one rank, joined manually
//	bertdist -bench-dist BENCH_dist.json   # measured-vs-modeled sweep
//
// The launcher forks this executable once per rank; workers rendezvous
// at rank 0's TCP address, train on deterministic synthetic data, and
// report per-rank results as JSON files the launcher aggregates. The
// bench mode sweeps world sizes with overlap on and off and prints the
// measured scaling efficiency next to the analytical model's prediction
// for the same measured buckets and probed link.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"demystbert/internal/dist"
	"demystbert/internal/distnet"
	"demystbert/internal/memscale"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/runutil"
	"demystbert/internal/trace"
)

// workerArgsEnv lets the test binary re-exec itself as a worker: the
// launcher always sets it, main binaries ignore it, and TestMain
// intercepts it before the test runner takes over.
const workerArgsEnv = "BERTDIST_WORKER_ARGS"

// trainFlags carries every knob shared by the worker, launcher, and
// bench modes.
type trainFlags struct {
	rank, world int
	addr        string
	launch      int

	steps, trainB, seq    int
	layers, dmodel, vocab int
	bucketKB              int
	seed                  uint64
	drop                  float64
	fixedData             bool
	noOverlap             bool
	zero1                 bool
	netTimeout            time.Duration

	trace    bool
	traceOut string

	paramsOut, resultOut, jsonOut string
	benchOut, benchWorlds         string
}

func (tf *trainFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&tf.launch, "launch", 0, "fork N loopback worker processes and train data-parallel")
	fs.IntVar(&tf.rank, "rank", 0, "this process's rank (with -world)")
	fs.IntVar(&tf.world, "world", 0, "process-group size; >0 switches to real distributed training")
	fs.StringVar(&tf.addr, "addr", "127.0.0.1:29500", "rank 0's rendezvous address")
	fs.IntVar(&tf.steps, "steps", 6, "training steps")
	fs.IntVar(&tf.trainB, "train-b", 4, "per-rank microbatch size")
	fs.IntVar(&tf.seq, "seq", 32, "sequence length")
	fs.IntVar(&tf.layers, "layers", 2, "transformer layers")
	fs.IntVar(&tf.dmodel, "dmodel", 64, "hidden size (heads = dmodel/16, dff = 4*dmodel)")
	fs.IntVar(&tf.vocab, "vocab", 1000, "vocabulary size")
	fs.IntVar(&tf.bucketKB, "bucket-kb", 128, "gradient bucket size in KB (0 = one bucket per layer group)")
	fs.Uint64Var(&tf.seed, "seed", 7, "model/data seed (identical across ranks)")
	fs.Float64Var(&tf.drop, "drop", -1, "dropout override (<0 keeps the config default)")
	fs.BoolVar(&tf.fixedData, "fixed-data", false, "repeat the first batch every step (convergence smoke)")
	fs.BoolVar(&tf.zero1, "zero1", false, "shard optimizer state ZeRO-1 style: each rank keeps m/v for its shard only and all-gathers updated weights")
	fs.DurationVar(&tf.netTimeout, "net-timeout", 30*time.Second, "handshake and per-frame I/O deadline")
	fs.BoolVar(&tf.trace, "trace", false, "record per-step spans on every rank; rank 0 merges them clock-aligned and reports per-step stragglers")
	fs.StringVar(&tf.traceOut, "trace-out", "", "with -trace: write the merged multi-rank Perfetto timeline here (rank 0)")
	fs.StringVar(&tf.paramsOut, "params-out", "", "write this rank's final model checkpoint here")
	fs.StringVar(&tf.resultOut, "result-out", "", "write this rank's result JSON here")
	fs.StringVar(&tf.jsonOut, "json", "", "with -launch: write aggregated per-rank results here")
	fs.StringVar(&tf.benchOut, "bench-dist", "", "run the measured-vs-modeled scaling sweep, write JSON here")
	fs.StringVar(&tf.benchWorlds, "bench-worlds", "1,2,4", "world sizes for -bench-dist")
}

func (tf *trainFlags) modelConfig() model.Config {
	cfg := model.Tiny()
	cfg.NumLayers = tf.layers
	cfg.DModel = tf.dmodel
	cfg.Heads = tf.dmodel / 16
	if cfg.Heads < 1 {
		cfg.Heads = 1
	}
	cfg.DFF = 4 * tf.dmodel
	cfg.Vocab = tf.vocab
	if tf.seq > cfg.MaxPos {
		cfg.MaxPos = tf.seq
	}
	if tf.drop >= 0 {
		cfg.DropProb = float32(tf.drop)
	}
	return cfg
}

func (tf *trainFlags) trainConfig() distnet.TrainConfig {
	return distnet.TrainConfig{
		Rank: tf.rank, World: tf.world, Addr: tf.addr, Timeout: tf.netTimeout,
		Model: tf.modelConfig(), Seed: tf.seed, Steps: tf.steps,
		B: tf.trainB, N: tf.seq,
		BucketBytes: tf.bucketKB * 1024, Overlap: !tf.noOverlap,
		FixedData: tf.fixedData, ProbeElems: 1 << 16,
		Trace: tf.trace, TraceOut: tf.traceOut,
	}
}

// atomicCkpt snapshots model weights to disk so that a SIGTERM landing
// mid-run still leaves a complete, loadable checkpoint: saves go to a
// temp file in the destination directory and rename into place, and the
// mutex excludes the trainer's optimizer step (the only writer of
// parameter values), making every snapshot step-consistent.
type atomicCkpt struct {
	mu   sync.Mutex
	m    *model.BERT
	path string
}

func (c *atomicCkpt) attach(m *model.BERT) {
	c.mu.Lock()
	c.m = m
	c.mu.Unlock()
}

func (c *atomicCkpt) save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || c.path == "" {
		return nil
	}
	if err := saveParamsAtomic(c.path, c.m); err != nil {
		return err
	}
	c.m = nil // saved cleanly; a later drain has nothing newer to write
	return nil
}

// saveParamsAtomic writes the checkpoint via temp-file + rename, so a
// reader never observes a truncated file: they get the previous complete
// checkpoint or the new complete one, nothing in between.
func saveParamsAtomic(path string, m *model.BERT) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// trainWorker runs one rank to completion.
func trainWorker(tf *trainFlags, stdout, stderr io.Writer, sd *runutil.Shutdown) int {
	cfg := tf.trainConfig()
	ck := &atomicCkpt{path: tf.paramsOut}
	cfg.WireTrainer = func(t *distnet.Trainer) error {
		if tf.zero1 && t.G.World() > 1 {
			sh, err := memscale.NewSharded(memscale.WrapLAMB(t.Opt), t.M.Params(), t.G.World(), t.G)
			if err != nil {
				return err
			}
			t.OptStep = sh.Step
		}
		// Serialize weight updates against checkpoint snapshots so the
		// SIGTERM drain never captures a half-applied step.
		step, opt := t.OptStep, t.Opt
		t.OptStep = func(ctx *nn.Ctx, params []*nn.Param) error {
			ck.mu.Lock()
			defer ck.mu.Unlock()
			if step != nil {
				return step(ctx, params)
			}
			opt.Step(ctx, params)
			return nil
		}
		ck.attach(t.M)
		return nil
	}
	if tf.paramsOut != "" {
		sd.Defer("mid-run checkpoint", func() {
			if err := ck.save(); err != nil {
				fmt.Fprintf(stderr, "bertdist: checkpoint: %v\n", err)
			}
		})
	}
	res, _, err := distnet.Train(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "bertdist: rank %d: %v\n", tf.rank, err)
		return 1
	}
	fmt.Fprintf(stdout, "rank %d/%d: %d steps, %d buckets, step %.2fms (fwd %.2f bwd %.2f comm %.2f exposed %.2f upd %.2f)\n",
		res.Rank, res.World, res.Steps, res.Buckets,
		res.StepMS, res.FwdMS, res.BwdMS, res.CommMS, res.ExposedMS, res.UpdMS)
	reportLossTrend(stdout, res.Losses)
	if tf.resultOut != "" {
		if err := writeJSON(tf.resultOut, res); err != nil {
			fmt.Fprintf(stderr, "bertdist: %v\n", err)
			return 1
		}
	}
	if tf.paramsOut != "" {
		if err := ck.save(); err != nil {
			fmt.Fprintf(stderr, "bertdist: checkpoint: %v\n", err)
			return 1
		}
	}
	return 0
}

func reportLossTrend(w io.Writer, losses []float64) {
	if len(losses) == 0 {
		return
	}
	first, last := losses[0], losses[len(losses)-1]
	trend := "rose"
	if last < first {
		trend = "fell"
	}
	fmt.Fprintf(w, "loss %s %.4f -> %.4f over %d steps\n", trend, first, last, len(losses))
}

// forkWorld forks one worker process per rank on a free loopback port
// and returns their results. Children are SIGTERMed if the parent is
// asked to shut down mid-run.
func forkWorld(tf trainFlags, world int, overlap bool, paramsOutRank0 string, stderr io.Writer, sd *runutil.Shutdown) ([]*distnet.Result, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	addr, err := freeLoopbackAddr()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bertdist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cmds := make([]*exec.Cmd, world)
	for r := 0; r < world; r++ {
		args := []string{
			"-rank", strconv.Itoa(r),
			"-world", strconv.Itoa(world),
			"-addr", addr,
			"-steps", strconv.Itoa(tf.steps),
			"-train-b", strconv.Itoa(tf.trainB),
			"-seq", strconv.Itoa(tf.seq),
			"-layers", strconv.Itoa(tf.layers),
			"-dmodel", strconv.Itoa(tf.dmodel),
			"-vocab", strconv.Itoa(tf.vocab),
			"-bucket-kb", strconv.Itoa(tf.bucketKB),
			"-seed", strconv.FormatUint(tf.seed, 10),
			"-drop", strconv.FormatFloat(tf.drop, 'g', -1, 64),
			"-net-timeout", tf.netTimeout.String(),
			"-result-out", filepath.Join(dir, fmt.Sprintf("rank%d.json", r)),
		}
		if !overlap {
			args = append(args, "-no-overlap")
		}
		if tf.fixedData {
			args = append(args, "-fixed-data")
		}
		if tf.zero1 {
			args = append(args, "-zero1")
		}
		if tf.trace {
			// Clock sync and the shard exchange are collectives: every rank
			// must trace, but only rank 0 writes the merged timeline.
			args = append(args, "-trace")
			if r == 0 && tf.traceOut != "" {
				args = append(args, "-trace-out", tf.traceOut)
			}
		}
		if r == 0 && paramsOutRank0 != "" {
			args = append(args, "-params-out", paramsOutRank0)
		}
		encoded, err := json.Marshal(args)
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), workerArgsEnv+"="+string(encoded))
		cmd.Stdout = stderr // keep the parent's stdout for the summary
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Signal(syscall.SIGTERM)
			}
			return nil, fmt.Errorf("starting rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	sd.Defer("distributed workers", func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Signal(syscall.SIGTERM)
			}
		}
	})

	var firstErr error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	results := make([]*distnet.Result, world)
	for r := range results {
		var res distnet.Result
		if err := readJSON(filepath.Join(dir, fmt.Sprintf("rank%d.json", r)), &res); err != nil {
			return nil, fmt.Errorf("rank %d result: %w", r, err)
		}
		results[r] = &res
	}
	return results, nil
}

// launchLocal is the `-launch N` mode: fork, wait, aggregate, summarize.
func launchLocal(tf *trainFlags, stdout, stderr io.Writer, sd *runutil.Shutdown) int {
	world := tf.launch
	results, err := forkWorld(*tf, world, !tf.noOverlap, tf.paramsOut, stderr, sd)
	if err != nil {
		fmt.Fprintf(stderr, "bertdist: launch: %v\n", err)
		return 1
	}
	r0 := results[0]
	fmt.Fprintf(stdout, "distributed training: world=%d overlap=%v buckets=%d grad_elems=%d\n",
		world, r0.Overlap, r0.Buckets, r0.GradElems)
	var meanFirst, meanLast float64
	for _, r := range results {
		fmt.Fprintf(stdout, "rank %d: step %.2fms comm %.2fms exposed %.2fms wire %dB/step\n",
			r.Rank, r.StepMS, r.CommMS, r.ExposedMS, r.WireBytesPerStep)
		meanFirst += r.Losses[0] / float64(world)
		meanLast += r.Losses[len(r.Losses)-1] / float64(world)
	}
	trend := "rose"
	if meanLast < meanFirst {
		trend = "fell"
	}
	fmt.Fprintf(stdout, "loss %s %.4f -> %.4f over %d steps (mean across ranks)\n",
		trend, meanFirst, meanLast, r0.Steps)
	if tf.trace {
		for _, r := range results[1:] {
			fmt.Fprintf(stdout, "rank %d clock offset: %+.0fus\n", r.Rank, r.ClockOffsetUS)
		}
		trace.WriteStragglerTable(stdout, r0.Straggler)
		if tf.traceOut != "" {
			fmt.Fprintf(stdout, "wrote merged trace %s (open in https://ui.perfetto.dev)\n", tf.traceOut)
		}
	}
	if tf.jsonOut != "" {
		if err := writeJSON(tf.jsonOut, results); err != nil {
			fmt.Fprintf(stderr, "bertdist: %v\n", err)
			return 1
		}
	}
	return 0
}

// --- measured-vs-modeled sweep ---------------------------------------

type benchModeled struct {
	StepMS     float64 `json:"step_ms"`
	ExposedMS  float64 `json:"exposed_ms"`
	HiddenMS   float64 `json:"hidden_ms"`
	Efficiency float64 `json:"efficiency"`
}

type benchPoint struct {
	World              int             `json:"world"`
	Overlap            bool            `json:"overlap"`
	Measured           *distnet.Result `json:"measured"`
	MeasuredEfficiency float64         `json:"measured_efficiency"`
	// ModeledIdeal assumes dedicated compute per rank (the paper's
	// setting); ModeledSharedHost dilates compute by world/cores, the
	// regime a loopback sweep on one machine actually runs in.
	ModeledIdeal      benchModeled `json:"modeled_ideal"`
	ModeledSharedHost benchModeled `json:"modeled_shared_host"`
}

type benchReport struct {
	Layers       int          `json:"layers"`
	DModel       int          `json:"dmodel"`
	Seq          int          `json:"seq"`
	TrainB       int          `json:"train_b"`
	Steps        int          `json:"steps"`
	BucketKB     int          `json:"bucket_kb"`
	Cores        int          `json:"cores"`
	GradElems    int          `json:"grad_elems"`
	Buckets      int          `json:"buckets"`
	SerialStepMS float64      `json:"serial_step_ms"`
	Points       []benchPoint `json:"points"`
}

func toModeled(p dist.Prediction, serial time.Duration) benchModeled {
	return benchModeled{
		StepMS:     float64(p.Step) / float64(time.Millisecond),
		ExposedMS:  float64(p.Exposed) / float64(time.Millisecond),
		HiddenMS:   float64(p.Hidden) / float64(time.Millisecond),
		Efficiency: p.Efficiency(serial),
	}
}

// benchDist sweeps world sizes with overlap on and off, printing
// measured scaling next to the analytical model fed with the measured
// buckets and the probed link.
func benchDist(tf *trainFlags, stdout, stderr io.Writer, sd *runutil.Shutdown) int {
	var worlds []int
	for _, s := range strings.Split(tf.benchWorlds, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			fmt.Fprintf(stderr, "bertdist: bad -bench-worlds entry %q\n", s)
			return 2
		}
		worlds = append(worlds, w)
	}

	// Serial calibration run: per-bucket backward segments and compute
	// times every prediction is built from.
	fmt.Fprintf(stderr, "bench-dist: calibrating at world=1...\n")
	serialRes, err := forkWorld(*tf, 1, true, "", stderr, sd)
	if err != nil {
		fmt.Fprintf(stderr, "bertdist: bench: %v\n", err)
		return 1
	}
	serial := serialRes[0]
	serialStep := msToDur(serial.StepMS)
	buckets := make([]dist.MeasuredBucket, len(serial.BucketKB))
	for i := range buckets {
		buckets[i] = dist.MeasuredBucket{
			Bwd:   msToDur(serial.BucketBwdMS[i]),
			Bytes: int64(serial.BucketKB[i] * 1024),
		}
	}
	fwd, upd := msToDur(serial.FwdMS), msToDur(serial.UpdMS)
	cores := runtime.NumCPU()

	rep := &benchReport{
		Layers: tf.layers, DModel: tf.dmodel, Seq: tf.seq, TrainB: tf.trainB,
		Steps: tf.steps, BucketKB: tf.bucketKB, Cores: cores,
		GradElems: serial.GradElems, Buckets: serial.Buckets,
		SerialStepMS: serial.StepMS,
	}

	fmt.Fprintf(stdout, "world overlap  step(ms)  exposed(ms)  eff    model-eff  model-eff(shared)\n")
	for _, w := range worlds {
		overlaps := []bool{true, false}
		if w == 1 {
			overlaps = []bool{true} // no comm to overlap
		}
		for _, ov := range overlaps {
			var results []*distnet.Result
			if w == 1 {
				results = serialRes // reuse the calibration run
			} else {
				fmt.Fprintf(stderr, "bench-dist: measuring world=%d overlap=%v...\n", w, ov)
				results, err = forkWorld(*tf, w, ov, "", stderr, sd)
				if err != nil {
					fmt.Fprintf(stderr, "bertdist: bench: %v\n", err)
					return 1
				}
			}
			// Worst rank bounds the step; rank 0's probe calibrates the link.
			meas := results[0]
			for _, r := range results {
				if r.StepMS > meas.StepMS {
					meas = r
				}
			}
			link := dist.Link{
				Bandwidth: results[0].LinkBandwidth,
				Latency:   time.Duration(results[0].LinkLatencyUS * float64(time.Microsecond)),
			}
			dilation := float64(w) / float64(cores)
			ideal := dist.PredictDP(fwd, upd, buckets, w, link, ov, 1)
			shared := dist.PredictDP(fwd, upd, buckets, w, link, ov, dilation)
			pt := benchPoint{
				World: w, Overlap: ov, Measured: meas,
				MeasuredEfficiency: serial.StepMS / meas.StepMS,
				ModeledIdeal:       toModeled(ideal, serialStep),
				ModeledSharedHost:  toModeled(shared, serialStep),
			}
			rep.Points = append(rep.Points, pt)
			fmt.Fprintf(stdout, "%5d %-7v %9.2f %12.2f %6.2f %10.2f %13.2f\n",
				w, ov, meas.StepMS, meas.ExposedMS, pt.MeasuredEfficiency,
				pt.ModeledIdeal.Efficiency, pt.ModeledSharedHost.Efficiency)
		}
	}
	if err := writeJSON(tf.benchOut, rep); err != nil {
		fmt.Fprintf(stderr, "bertdist: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", tf.benchOut)
	return 0
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func freeLoopbackAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
