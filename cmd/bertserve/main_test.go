package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"demystbert/internal/serve"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad gemm path":        {"-gemm-path", "nope"},
		"bad buckets":          {"-buckets", "8,x"},
		"loadgen needs target": {"-loadgen"},
		"bad rates":            {"-bench", "-rates", "1,zz"},
	} {
		if _, _, code := runCmd(t, args...); code != 2 {
			t.Errorf("%s: exit code %d, want 2", name, code)
		}
	}
}

// TestBenchWritesReport runs a minuscule frontier (one path, one rate,
// tiny durations) end to end and checks the BENCH_serve.json schema.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	stdout, stderr, code := runCmd(t,
		"-bench", "-bench-out", out,
		"-paths", "fused", "-rates", "200",
		"-saturation-rate", "600", "-duration", "300ms")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Frontier) != 2 { // one sweep rate + the saturation point
		t.Errorf("frontier has %d points, want 2", len(rep.Frontier))
	}
	if rep.SerialBaseline.LoadResult == nil || rep.SerialBaseline.OK == 0 {
		t.Error("serial baseline missing or empty")
	}
	if !rep.EqualAccuracy {
		t.Error("batched and serial predictions diverged")
	}
	for _, pt := range rep.Frontier {
		if pt.PackMisses != 0 {
			t.Errorf("path %s took %d steady-state pack misses", pt.Path, pt.PackMisses)
		}
	}
}

// TestLoadgenAgainstLiveServer starts a real server on an ephemeral
// port and drives it over HTTP with the loadgen Target adapter.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	ecfg := serve.Config{}
	ecfg.Model.Vocab, ecfg.Model.MaxPos = 1000, 64
	ecfg.Model.NumLayers, ecfg.Model.DModel, ecfg.Model.Heads, ecfg.Model.DFF = 2, 64, 4, 256
	ecfg.Model.FusedAttention = true
	ecfg.Seed = 42
	engine, srv, err := serve.Start(ecfg, "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{
		"-loadgen", "-target", "http://" + srv.Addr,
		"-rate", "100", "-duration", "300ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var res serve.LoadResult
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("loadgen output not JSON: %v\n%s", err, out.String())
	}
	if res.OK == 0 || res.Failed > 0 {
		t.Errorf("loadgen result ok=%d failed=%d: %+v", res.OK, res.Failed, res)
	}
}
