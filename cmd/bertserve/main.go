// Command bertserve runs the frozen-weight inference engine behind an
// HTTP front-end with continuous batching — the serving-side counterpart
// of bertprof's training characterization. It has three modes:
//
// Server (default): build the model, pre-pack every weight for the
// selected GEMM path, and serve POST /v1/mlm (plus /healthz, /metrics,
// /debug/pprof) until SIGINT/SIGTERM, which drains gracefully: HTTP
// stops accepting, in-flight requests finish, every admitted request is
// answered.
//
//	bertserve -addr :8080 [-layers N] [-dmodel D] [-heads H] [-dff F]
//	          [-vocab V] [-maxpos P] [-gemm-path fused] [-max-batch 32]
//	          [-max-delay 2ms] [-buckets 8,16,32] [-queue-cap 4096]
//
// Load generator: drive an already-running server (or error out) with
// deterministic synthetic traffic on an open-loop clock and print the
// measured latency distribution.
//
//	bertserve -loadgen -target http://host:8080 -rate 1000 -duration 10s
//
// Bench: run the full in-process latency-vs-throughput frontier across
// GEMM paths plus the serial baseline and accuracy check, and write
// BENCH_serve.json.
//
//	bertserve -bench [-bench-out BENCH_serve.json] [-rates 250,500,1000]
//	          [-paths blocked,fused,int8] [-duration 5s]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/runutil"
	"demystbert/internal/serve"
	"demystbert/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertserve", flag.ContinueOnError)
	fs.SetOutput(stderr)

	// Model geometry (defaults are the reduced-scale config every other
	// binary uses; serving cares about MaxPos ≥ the largest bucket).
	layers := fs.Int("layers", 2, "Transformer layer count (N)")
	dmodel := fs.Int("dmodel", 64, "hidden dimension (d_model)")
	heads := fs.Int("heads", 4, "attention heads (h)")
	dff := fs.Int("dff", 256, "intermediate dimension (d_ff)")
	vocab := fs.Int("vocab", 1000, "vocabulary size")
	maxpos := fs.Int("maxpos", 64, "maximum sequence length (position table size)")
	seed := fs.Uint64("seed", 42, "deterministic weight seed")
	gemmPath := fs.String("gemm-path", "fused", "GEMM path: auto|naive|blocked|packed|batched|fused|int8")

	// Scheduler policy.
	addr := fs.String("addr", "localhost:8080", "serve address (\":0\" picks a free port)")
	maxBatch := fs.Int("max-batch", 32, "max requests per dynamic batch")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "batch coalescing deadline (starvation bound)")
	buckets := fs.String("buckets", "", "comma-separated length buckets (default: powers of two up to maxpos)")
	queueCap := fs.Int("queue-cap", 4096, "admission queue capacity")

	// Request tracing.
	traceSample := fs.Int("trace-sample", 0, "trace 1 in N requests (0 = tracing off; client X-Trace-Id headers are always honored when on)")
	traceOut := fs.String("trace-out", "", "write the span+kernel Perfetto timeline here on shutdown (requires -trace-sample)")

	// Load generator.
	loadgen := fs.Bool("loadgen", false, "run as load generator against -target instead of serving")
	target := fs.String("target", "", "server URL for -loadgen (e.g. http://localhost:8080)")
	rate := fs.Float64("rate", 1000, "offered load, requests/second")
	duration := fs.Duration("duration", 5*time.Second, "load duration per measurement")
	minLen := fs.Int("min-len", 5, "minimum synthetic request length")
	maxLen := fs.Int("max-len", 16, "maximum synthetic request length")
	maskFrac := fs.Float64("mask-frac", 0.15, "fraction of positions masked")

	// Frontier bench.
	bench := fs.Bool("bench", false, "run the in-process latency-vs-throughput frontier and exit")
	benchOut := fs.String("bench-out", "BENCH_serve.json", "frontier report output path")
	paths := fs.String("paths", "blocked,fused,int8", "GEMM paths to sweep in -bench")
	rates := fs.String("rates", "250,500,1000,2000", "offered rates to sweep in -bench")
	satRate := fs.Float64("saturation-rate", 4000, "capacity-measurement rate for -bench")

	if err := fs.Parse(args); err != nil {
		return 2
	}

	mcfg := model.Config{
		Vocab: *vocab, MaxPos: *maxpos, NumLayers: *layers,
		DModel: *dmodel, Heads: *heads, DFF: *dff,
		FusedAttention: true,
	}
	path, err := kernels.ParseGEMMPath(*gemmPath)
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: %v\n", err)
		return 2
	}
	bkts, err := parseInts(*buckets)
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: -buckets: %v\n", err)
		return 2
	}
	ecfg := serve.Config{
		Model: mcfg, Seed: *seed, GEMMPath: path,
		MaxBatch: *maxBatch, MaxDelay: *maxDelay,
		Buckets: bkts, QueueCap: *queueCap,
	}
	if *traceSample > 0 {
		ecfg.Tracer = trace.New(0, 0)
		ecfg.Tracer.SetSampleEvery(*traceSample)
	}
	spec := serve.LoadSpec{
		Rate: *rate, Duration: *duration,
		MinLen: *minLen, MaxLen: *maxLen,
		MaskFrac: *maskFrac, Vocab: *vocab, Seed: *seed,
	}

	switch {
	case *bench:
		return runBench(ecfg, spec, *paths, *rates, *satRate, *benchOut, stdout, stderr)
	case *loadgen:
		return runLoadgen(spec, *target, stdout, stderr)
	default:
		return runServer(ecfg, *addr, *traceOut, stdout, stderr)
	}
}

// runServer serves until SIGINT/SIGTERM, then drains: HTTP first (stop
// accepting, finish in-flight request bodies), engine second (answer
// everything admitted).
func runServer(ecfg serve.Config, addr, traceOut string, stdout, stderr io.Writer) int {
	sd := runutil.Install(stderr)
	defer sd.Drain()

	engine, srv, err := serve.Start(ecfg, addr)
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: %v\n", err)
		return 1
	}
	done := make(chan struct{})
	if traceOut != "" && ecfg.Tracer != nil {
		// Registered before "drain engine" so it runs after: Defers run
		// LIFO, and the dump must see the final in-flight spans land.
		sd.Defer("trace dump", func() {
			f, err := os.Create(traceOut)
			if err != nil {
				fmt.Fprintf(stderr, "bertserve: trace out: %v\n", err)
				return
			}
			werr := engine.WriteTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "bertserve: writing trace: %v\n", werr)
			}
		})
	}
	sd.Defer("drain engine", func() { engine.Close(); close(done) })
	sd.Defer("drain http", func() { srv.ShutdownTimeout(5 * time.Second) })

	eff := engine.Config()
	fmt.Fprintf(stdout, "bertserve: serving on http://%s/v1/mlm (gemm=%s, buckets=%v, max_batch=%d, max_delay=%v, warmed %d packs)\n",
		srv.Addr, eff.GEMMPath, eff.Buckets, eff.MaxBatch, eff.MaxDelay, engine.WarmedPacks)
	<-done // signal handler drains and exits the process
	return 0
}

// runLoadgen drives an external server over HTTP with open-loop load.
func runLoadgen(spec serve.LoadSpec, target string, stdout, stderr io.Writer) int {
	if target == "" {
		fmt.Fprintf(stderr, "bertserve: -loadgen requires -target URL\n")
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}
	res := serve.RunLoad(spec, httpTarget(client, target))
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(res)
	if res.OK == 0 {
		fmt.Fprintf(stderr, "bertserve: no request succeeded against %s\n", target)
		return 1
	}
	return 0
}

// httpTarget adapts a serving URL to the loadgen Target signature,
// mapping 429 back to ErrOverloaded so rejection accounting matches
// in-process runs.
func httpTarget(client *http.Client, base string) serve.Target {
	url := strings.TrimSuffix(base, "/") + "/v1/mlm"
	return func(req *serve.Request) (*serve.Response, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		hr, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer hr.Body.Close()
		if hr.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, hr.Body)
			return nil, serve.ErrOverloaded
		}
		if hr.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(hr.Body)
			return nil, fmt.Errorf("HTTP %d: %s", hr.StatusCode, bytes.TrimSpace(b))
		}
		var resp serve.Response
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
}

// runBench runs the in-process frontier and writes BENCH_serve.json.
func runBench(ecfg serve.Config, spec serve.LoadSpec, paths, rates string, satRate float64, out string, stdout, stderr io.Writer) int {
	rateList, err := parseFloats(rates)
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: -rates: %v\n", err)
		return 2
	}
	bcfg := serve.BenchConfig{
		Model:          ecfg,
		Spec:           spec,
		Paths:          splitNonEmpty(paths),
		Rates:          rateList,
		SaturationRate: satRate,
	}
	rep, err := serve.RunBench(bcfg, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: bench: %v\n", err)
		return 1
	}
	// Serving metrics accumulate across the sweep; snapshot them into
	// the report sidecar via the debug mux if someone is watching, but
	// the artifact itself is self-contained.
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "bertserve: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "bertserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitNonEmpty(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitNonEmpty(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
