package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), code
}

func TestInputSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "input")
	if code != 0 || !strings.Contains(out, "Figure 8") {
		t.Fatalf("input sweep failed (code %d)", code)
	}
}

func TestModelSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "model")
	if code != 0 || !strings.Contains(out, "C3 (Megatron-like)") {
		t.Fatalf("model sweep failed (code %d)", code)
	}
}

func TestCustomBatchSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "batch", "-values", "4,8")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "tokens/s") || !strings.Contains(out, "LAMB%") {
		t.Fatalf("sweep table malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("expected 3 lines, got %d:\n%s", lines, out)
	}
}

func TestLayersSweepDefaults(t *testing.T) {
	out, code := runCmd(t, "-sweep", "layers")
	if code != 0 || strings.Count(out, "\n") != 5 {
		t.Fatalf("layers sweep: code %d output:\n%s", code, out)
	}
}

func TestSeqlenSweepMixedPrecision(t *testing.T) {
	out, code := runCmd(t, "-sweep", "seqlen", "-values", "128,512", "-mp")
	if code != 0 || strings.Count(out, "\n") != 3 {
		t.Fatalf("seqlen sweep failed: code %d\n%s", code, out)
	}
}

func TestBadSweep(t *testing.T) {
	if _, code := runCmd(t, "-sweep", "nonsense"); code == 0 {
		t.Fatal("bad sweep must fail")
	}
}

func TestBadValues(t *testing.T) {
	if _, code := runCmd(t, "-sweep", "batch", "-values", "4,x"); code == 0 {
		t.Fatal("bad values must fail")
	}
	if _, code := runCmd(t, "-sweep", "batch", "-values", "-3"); code == 0 {
		t.Fatal("negative values must fail")
	}
}
