package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), code
}

func TestInputSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "input")
	if code != 0 || !strings.Contains(out, "Figure 8") {
		t.Fatalf("input sweep failed (code %d)", code)
	}
}

func TestModelSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "model")
	if code != 0 || !strings.Contains(out, "C3 (Megatron-like)") {
		t.Fatalf("model sweep failed (code %d)", code)
	}
}

func TestCustomBatchSweep(t *testing.T) {
	out, code := runCmd(t, "-sweep", "batch", "-values", "4,8")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "tokens/s") || !strings.Contains(out, "LAMB%") {
		t.Fatalf("sweep table malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("expected 3 lines, got %d:\n%s", lines, out)
	}
}

func TestLayersSweepDefaults(t *testing.T) {
	out, code := runCmd(t, "-sweep", "layers")
	if code != 0 || strings.Count(out, "\n") != 5 {
		t.Fatalf("layers sweep: code %d output:\n%s", code, out)
	}
}

func TestSeqlenSweepMixedPrecision(t *testing.T) {
	out, code := runCmd(t, "-sweep", "seqlen", "-values", "128,512", "-mp")
	if code != 0 || strings.Count(out, "\n") != 3 {
		t.Fatalf("seqlen sweep failed: code %d\n%s", code, out)
	}
}

func TestMetricsJSONLPerPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.jsonl")
	_, code := runCmd(t, "-sweep", "batch", "-values", "4,8,16", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d JSONL records, want 4 (one per sweep point + final snapshot)", len(lines))
	}
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &final); err != nil {
		t.Fatalf("final record not valid JSON: %v", err)
	}
	if _, ok := final["final_metrics"]; !ok {
		t.Fatalf("last record is not the registry snapshot: %s", lines[3])
	}
	var prevTokens float64
	for i, line := range lines[:3] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
		if rec["step"] != float64(i+1) {
			t.Fatalf("line %d has step %v", i+1, rec["step"])
		}
		tokens := rec["tokens"].(float64)
		if tokens <= prevTokens {
			t.Fatalf("batch sweep tokens not increasing: %v then %v", prevTokens, tokens)
		}
		prevTokens = tokens
	}
}

func TestMetricsJSONLFixedSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "point.jsonl")
	_, code := runCmd(t, "-sweep", "input", "-metrics-jsonl", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL records, want 2 (the point + final snapshot)", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if rec["step"] != float64(1) {
		t.Fatalf("fixed sweep record malformed: %v", rec)
	}
}

func TestDebugAddr(t *testing.T) {
	out, code := runCmd(t, "-sweep", "input", "-debug-addr", "127.0.0.1:0")
	if code != 0 || !strings.Contains(out, "debug server: http://127.0.0.1:") {
		t.Fatalf("debug server did not start: code %d\n%s", code, out)
	}
}

func TestBadSweep(t *testing.T) {
	if _, code := runCmd(t, "-sweep", "nonsense"); code == 0 {
		t.Fatal("bad sweep must fail")
	}
}

func TestBadValues(t *testing.T) {
	if _, code := runCmd(t, "-sweep", "batch", "-values", "4,x"); code == 0 {
		t.Fatal("bad values must fail")
	}
	if _, code := runCmd(t, "-sweep", "batch", "-values", "-3"); code == 0 {
		t.Fatal("negative values must fail")
	}
}
