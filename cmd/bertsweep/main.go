// Command bertsweep runs the hyperparameter sweeps of Section 3.3:
// the input-size sweep (Fig. 8) and the layer-size sweep (Fig. 9), plus a
// free-form sweep over any single hyperparameter.
//
// Usage:
//
//	bertsweep -sweep input               # Fig. 8
//	bertsweep -sweep model               # Fig. 9
//	bertsweep -sweep layers -values 12,24,48
//	bertsweep -sweep batch  -values 2,4,8,16,32,64
//	bertsweep -sweep seqlen -values 64,128,256,512
//
// -metrics-jsonl writes one telemetry record per sweep point (or one
// default-workload record for the fixed input/model sweeps) in the shared
// per-step JSONL schema; -debug-addr serves the runtime counter registry,
// expvar, and pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"demystbert"
	"demystbert/internal/obs"
	"demystbert/internal/report"
	"demystbert/internal/runutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bertsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sweep := fs.String("sweep", "input", "sweep: input, model, layers, batch, seqlen")
	values := fs.String("values", "", "comma-separated values for layers/batch/seqlen sweeps")
	mp := fs.Bool("mp", false, "mixed precision")
	metricsPath := fs.String("metrics-jsonl", "", "write one JSON telemetry record per sweep point to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Signal-safe cleanup: SIGINT/SIGTERM flushes the metrics file and
	// drains the debug server instead of truncating mid-write.
	sd := runutil.Install(stderr)
	defer sd.Drain()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(stderr, "bertsweep: %v\n", err)
			return 2
		}
		sd.Defer("debug server", func() { srv.ShutdownTimeout(2 * time.Second) })
		fmt.Fprintf(stdout, "debug server: http://%s/metrics\n", srv.Addr)
	}

	dev := demystbert.MI100()
	prec := demystbert.FP32
	if *mp {
		prec = demystbert.Mixed
	}

	var emitter *obs.StepEmitter
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "bertsweep: %v\n", err)
			return 2
		}
		em := obs.NewStepEmitter(f, dev.Peaks())
		sd.Defer("metrics jsonl", func() {
			if err := em.EmitFinal(obs.Default); err != nil {
				fmt.Fprintf(stderr, "bertsweep: metrics final: %v\n", err)
			}
			f.Close()
		})
		emitter = em
	}
	emit := func(point int, r *demystbert.Result) bool {
		if emitter == nil {
			return true
		}
		if err := emitter.Emit(report.StepRecordFromResult(point, r)); err != nil {
			fmt.Fprintf(stderr, "bertsweep: metrics emit: %v\n", err)
			return false
		}
		return true
	}

	switch *sweep {
	case "input":
		report.Fig8(stdout, demystbert.BERTLarge(), dev)
		if !emit(1, demystbert.Characterize(demystbert.Phase1(demystbert.BERTLarge(), 16, prec), dev)) {
			return 2
		}
	case "model":
		report.Fig9(stdout, dev)
		if !emit(1, demystbert.Characterize(demystbert.Phase1(demystbert.BERTLarge(), 16, prec), dev)) {
			return 2
		}
	case "layers", "batch", "seqlen":
		vals, err := parseValues(*values, defaults(*sweep))
		if err != nil {
			fmt.Fprintf(stderr, "bertsweep: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%-8s %10s %10s %8s %8s %8s %8s\n",
			*sweep, "iteration", "tokens/s", "GEMM%", "LAMB%", "Attn%", "Lin+FC%")
		for i, v := range vals {
			cfg := demystbert.BERTLarge()
			w := demystbert.Phase1(cfg, 16, prec)
			switch *sweep {
			case "layers":
				cfg.NumLayers = v
				w.Cfg = cfg
			case "batch":
				w.B = v
			case "seqlen":
				w.SeqLen = v
			}
			r := demystbert.Characterize(w, dev)
			fmt.Fprintf(stdout, "%-8d %10v %9.0fk %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				v, r.Total.Round(time.Millisecond), r.TokensPerSecond()/1e3,
				100*r.GEMMShare(), 100*r.LAMBShare(),
				100*r.AttentionOpsShare(), 100*r.LinearFCShare())
			if !emit(i+1, r) {
				return 2
			}
		}
	default:
		fmt.Fprintf(stderr, "bertsweep: unknown sweep %q\n", *sweep)
		return 2
	}
	return 0
}

func defaults(sweep string) []int {
	switch sweep {
	case "layers":
		return []int{6, 12, 24, 48}
	case "batch":
		return []int{2, 4, 8, 16, 32, 64}
	default:
		return []int{64, 128, 256, 512}
	}
}

func parseValues(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
