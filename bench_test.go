package demystbert

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index E1-E14). Two kinds of
// benchmarks coexist:
//
//   - Model benchmarks (BenchmarkFig*, BenchmarkTable2b, ...) execute the
//     analytical pipeline at BERT-Large scale and publish the modeled
//     quantities the paper reports (shares, speedups, kernel counts) as
//     custom benchmark metrics, so `go test -bench` output reads like the
//     paper's evaluation section.
//
//   - Real benchmarks (BenchmarkReal*) execute the pure-Go engine —
//     kernels, attention layers, LAMB, full training iterations — and
//     measure actual wall-clock time, validating operator manifestation
//     (E14) and the fusion result (E11) on real hardware.
//
// Run everything with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"demystbert/internal/data"
	"demystbert/internal/ddp"
	"demystbert/internal/dist"
	"demystbert/internal/fusion"
	"demystbert/internal/kernels"
	"demystbert/internal/model"
	"demystbert/internal/nn"
	"demystbert/internal/opgraph"
	"demystbert/internal/optim"
	"demystbert/internal/perfmodel"
	"demystbert/internal/profile"
	"demystbert/internal/tensor"
)

// ---------------------------------------------------------------------------
// E1: Table 2b — GEMM dimension enumeration.

func BenchmarkTable2bGraphBuild(b *testing.B) {
	w := Phase1(BERTLarge(), 32, FP32)
	var g *Graph
	for i := 0; i < b.N; i++ {
		g = BuildGraph(w)
	}
	b.ReportMetric(float64(g.KernelCount()), "kernels")
	b.ReportMetric(float64(len(g.GEMMs())), "gemm-ops")
}

// ---------------------------------------------------------------------------
// E2: Fig. 3 — runtime breakdown per configuration.

func benchFig3(b *testing.B, w Workload) {
	dev := MI100()
	var r *Result
	for i := 0; i < b.N; i++ {
		r = Characterize(w, dev)
	}
	b.ReportMetric(1e3*r.Total.Seconds(), "modeled-ms")
	b.ReportMetric(100*r.ClassShare(opgraph.ClassTransformer), "transformer-%")
	b.ReportMetric(100*r.LAMBShare(), "lamb-%")
	b.ReportMetric(100*r.ClassShare(opgraph.ClassOutput), "output-%")
}

func BenchmarkFig3_Ph1B32FP32(b *testing.B) { benchFig3(b, Phase1(BERTLarge(), 32, FP32)) }
func BenchmarkFig3_Ph1B4FP32(b *testing.B)  { benchFig3(b, Phase1(BERTLarge(), 4, FP32)) }
func BenchmarkFig3_Ph2B4FP32(b *testing.B)  { benchFig3(b, Phase2(BERTLarge(), 4, FP32)) }
func BenchmarkFig3_Ph1B32FP16(b *testing.B) { benchFig3(b, Phase1(BERTLarge(), 32, Mixed)) }
func BenchmarkFig3_Ph2B4FP16(b *testing.B)  { benchFig3(b, Phase2(BERTLarge(), 4, Mixed)) }

// ---------------------------------------------------------------------------
// E3: Fig. 4 — hierarchical breakdown.

func benchFig4(b *testing.B, p Precision) {
	dev := MI100()
	var r *Result
	for i := 0; i < b.N; i++ {
		r = Characterize(Phase1(BERTLarge(), 32, p), dev)
	}
	b.ReportMetric(100*r.CategoryShare(profile.CatLinear), "linear-%")
	b.ReportMetric(100*r.CategoryShare(profile.CatFCGEMM), "fcgemm-%")
	b.ReportMetric(100*r.AttentionOpsShare(), "attention-ops-%")
	b.ReportMetric(100*r.LinearFCShare(), "linear+fc-%")
}

func BenchmarkFig4_FP32(b *testing.B) { benchFig4(b, FP32) }
func BenchmarkFig4_MP(b *testing.B)   { benchFig4(b, Mixed) }

// ---------------------------------------------------------------------------
// E4: Fig. 6 — GEMM arithmetic intensities.

func BenchmarkFig6GEMMIntensity(b *testing.B) {
	// Graph construction and GEMM extraction are setup, not the measured
	// quantity: hoisting them out of the loop keeps the benchmark at zero
	// steady-state allocations so -benchmem regressions point at the
	// intensity computation itself.
	gemms := BuildGraph(Phase1(BERTLarge(), 32, FP32)).GEMMs()
	b.ReportAllocs()
	b.ResetTimer()
	var fc, lin, score float64
	for i := 0; i < b.N; i++ {
		for _, op := range gemms {
			switch op.Name {
			case "fc1_fwd":
				fc = op.Intensity()
			case "linear_qkv_fwd":
				lin = op.Intensity()
			case "attn_score_bgemm":
				score = op.Intensity()
			}
		}
	}
	b.ReportMetric(fc, "fc-ops/byte")
	b.ReportMetric(lin, "linear-ops/byte")
	b.ReportMetric(score, "attn-score-ops/byte")
}

// ---------------------------------------------------------------------------
// E5: Fig. 7 — per-class intensity and bandwidth demand.

func BenchmarkFig7Bandwidth(b *testing.B) {
	dev := MI100()
	var bwMap map[profile.Category]float64
	for i := 0; i < b.N; i++ {
		bwMap = Characterize(Phase1(BERTLarge(), 32, FP32), dev).CategoryBW()
	}
	var maxBW float64
	for _, v := range bwMap {
		if v > maxBW {
			maxBW = v
		}
	}
	b.ReportMetric(100*bwMap[profile.CatLAMBStage1]/maxBW, "lamb1-normBW-%")
	b.ReportMetric(100*bwMap[profile.CatAttnBGEMM]/maxBW, "attnGEMM-normBW-%")
	b.ReportMetric(100*bwMap[profile.CatFCGEMM]/maxBW, "fcGEMM-normBW-%")
}

// ---------------------------------------------------------------------------
// E6: Fig. 8 — input-size sweep.

func BenchmarkFig8InputSweep(b *testing.B) {
	dev := MI100()
	cfg := BERTLarge()
	var lamb4, lamb32, attn128, attn512 float64
	for i := 0; i < b.N; i++ {
		lamb4 = Characterize(Phase1(cfg, 4, FP32), dev).LAMBShare()
		lamb32 = Characterize(Phase1(cfg, 32, FP32), dev).LAMBShare()
		attn128 = Characterize(Phase1(cfg, 16, FP32), dev).AttentionOpsShare()
		attn512 = Characterize(Phase2(cfg, 4, FP32), dev).AttentionOpsShare()
	}
	b.ReportMetric(100*lamb4, "lamb-B4-%")
	b.ReportMetric(100*lamb32, "lamb-B32-%")
	b.ReportMetric(100*attn128, "attn-n128-%")
	b.ReportMetric(100*attn512, "attn-n512-%")
}

// ---------------------------------------------------------------------------
// E7: Fig. 9 — layer-size sweep.

func BenchmarkFig9ModelSweep(b *testing.B) {
	dev := MI100()
	var shares [3]float64
	for i := 0; i < b.N; i++ {
		for j, d := range []int{512, 1024, 2048} {
			cfg := BERTLarge()
			cfg.DModel, cfg.DFF, cfg.Heads = d, 4*d, d/64
			shares[j] = Characterize(Phase1(cfg, 4, FP32), dev).LAMBShare()
		}
	}
	b.ReportMetric(100*shares[0], "lamb-C1-%")
	b.ReportMetric(100*shares[1], "lamb-C2-%")
	b.ReportMetric(100*shares[2], "lamb-C3-%")
}

// ---------------------------------------------------------------------------
// E8: Section 4 — activation checkpointing.

func BenchmarkCheckpointing(b *testing.B) {
	dev := MI100()
	var kinc, rinc float64
	for i := 0; i < b.N; i++ {
		base := Characterize(Phase1(BERTLarge(), 32, FP32), dev)
		w := Phase1(BERTLarge(), 32, FP32)
		w.CheckpointEvery = 6
		ck := Characterize(w, dev)
		kinc = 100 * (float64(ck.KernelCount())/float64(base.KernelCount()) - 1)
		rinc = 100 * (float64(ck.Total)/float64(base.Total) - 1)
	}
	b.ReportMetric(kinc, "kernel-increase-%")
	b.ReportMetric(rinc, "runtime-increase-%")
}

// ---------------------------------------------------------------------------
// E9: Fig. 11 — multi-device profiles.

func BenchmarkFig11Distributed(b *testing.B) {
	dev := MI100()
	var ps []DistProfile
	for i := 0; i < b.N; i++ {
		ps = Fig11Profiles(Phase1(BERTLarge(), 16, FP32), dev)
	}
	b.ReportMetric(100*ps[1].CommShare(), "D1-comm-%")
	b.ReportMetric(100*ps[2].CommShare(), "D2-comm-%")
	b.ReportMetric(100*ps[3].CommShare(), "T1-comm-%")
	b.ReportMetric(100*ps[4].CommShare(), "T2-comm-%")
}

// ---------------------------------------------------------------------------
// E10: Fig. 12a — kernel-fusion study (model).

func BenchmarkFig12aLayerNormFusion(b *testing.B) {
	dev := MI100()
	var s fusion.Study
	for i := 0; i < b.N; i++ {
		s = fusion.TransformerLayerNormStudy(Phase1(BERTLarge(), 32, FP32), dev)
	}
	b.ReportMetric(s.KernelRatio(), "kernel-ratio")
	b.ReportMetric(s.TrafficRatio(), "traffic-ratio")
	b.ReportMetric(s.Speedup(), "speedup")
}

func BenchmarkFig12aAdamFusion(b *testing.B) {
	dev := MI100()
	var s fusion.Study
	for i := 0; i < b.N; i++ {
		s = fusion.ModelAdamStudy(Phase1(BERTLarge(), 32, FP32), 320, dev)
	}
	b.ReportMetric(s.KernelRatio(), "kernel-ratio")
	b.ReportMetric(s.TrafficRatio(), "traffic-ratio")
	b.ReportMetric(s.Speedup(), "speedup")
}

// ---------------------------------------------------------------------------
// E11: Fig. 12b — QKV GEMM fusion: model plus REAL execution.

func BenchmarkFig12bQKVFusionModel(b *testing.B) {
	dev := MI100()
	var small, large fusion.Study
	for i := 0; i < b.N; i++ {
		small = fusion.QKV(512, 1024, FP32, dev)
		large = fusion.QKV(8192, 1024, FP32, dev)
	}
	b.ReportMetric(100*(small.Speedup()-1), "small-input-speedup-%")
	b.ReportMetric(100*(large.Speedup()-1), "large-input-speedup-%")
}

// Real 3S-vs-3F execution at engine scale: three serial GEMMs against one
// fused GEMM over the concatenated weights.
func benchQKVReal(b *testing.B, fused bool, tokens, d int) {
	r := tensor.NewRNG(1)
	x := make([]float32, tokens*d)
	wq := make([]float32, d*d)
	wk := make([]float32, d*d)
	wv := make([]float32, d*d)
	wCat := make([]float32, 3*d*d)
	for _, s := range [][]float32{x, wq, wk, wv} {
		for i := range s {
			s[i] = r.Float32() - 0.5
		}
	}
	copy(wCat, wq)
	copy(wCat[d*d:], wk)
	copy(wCat[2*d*d:], wv)
	out := make([]float32, tokens*3*d)
	b.SetBytes(int64(4 * (tokens*d + 3*d*d + 3*tokens*d)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fused {
			kernels.GEMM(false, true, tokens, 3*d, d, 1, x, wCat, 0, out)
		} else {
			kernels.GEMM(false, true, tokens, d, d, 1, x, wq, 0, out[:tokens*d])
			kernels.GEMM(false, true, tokens, d, d, 1, x, wk, 0, out[tokens*d:2*tokens*d])
			kernels.GEMM(false, true, tokens, d, d, 1, x, wv, 0, out[2*tokens*d:])
		}
	}
}

func BenchmarkFig12bRealQKVSerial(b *testing.B) { benchQKVReal(b, false, 256, 256) }
func BenchmarkFig12bRealQKVFused(b *testing.B)  { benchQKVReal(b, true, 256, 256) }

// ---------------------------------------------------------------------------
// E12: Section 6.2.1 — near-memory compute.

func BenchmarkNMC(b *testing.B) {
	var sp, e2e float64
	for i := 0; i < b.N; i++ {
		st := NMCStudy(Phase1(BERTLarge(), 32, FP32))
		sp = st.SpeedupVsOptimistic()
		e2e = st.EndToEndImprovement()
	}
	b.ReportMetric(sp, "lamb-speedup-x")
	b.ReportMetric(100*e2e, "end-to-end-%")
}

// ---------------------------------------------------------------------------
// E13: takeaway evaluation throughput.

func BenchmarkTakeawayEvaluation(b *testing.B) {
	cfg := BERTLarge()
	dev := MI100()
	for i := 0; i < b.N; i++ {
		if err := WriteArtifact(io.Discard, "takeaways", cfg, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E14 and engine benchmarks: real kernel and training execution.

func BenchmarkRealIterationTiny(b *testing.B) {
	cfg := TinyBERT()
	m, err := model.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 2)
	batch := gen.Next(4, 32)
	ctx := &nn.Ctx{RNG: tensor.NewRNG(3), Train: true}
	opt := optim.NewLAMB(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(ctx, batch)
		opt.Step(ctx, m.Params())
		m.ZeroGrads()
	}
}

// BenchmarkRealIterationBatchOne demonstrates Takeaway 5 in execution: a
// B=1 iteration still runs matrix-matrix kernels, not GEMV.
func BenchmarkRealIterationBatchOne(b *testing.B) {
	cfg := TinyBERT()
	m, err := model.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 2)
	batch := gen.Next(1, 32)
	prof := profile.New()
	ctx := &nn.Ctx{Prof: prof, RNG: tensor.NewRNG(3), Train: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(ctx, batch)
		m.ZeroGrads()
	}
	b.StopTimer()
	sum := prof.Summarize()
	b.ReportMetric(100*sum.GEMMShare(), "gemm-share-%")
}

func benchRealGEMM(b *testing.B, m, n, k int) {
	r := tensor.NewRNG(1)
	x := make([]float32, m*k)
	y := make([]float32, k*n)
	z := make([]float32, m*n)
	for i := range x {
		x[i] = r.Float32()
	}
	for i := range y {
		y[i] = r.Float32()
	}
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.GEMM(false, false, m, n, k, 1, x, y, 0, z)
	}
	b.ReportMetric(float64(2*m*n*k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// Scaled-down Table 2b shapes (1/8 linear dimensions of BERT-Large Ph1-B32).
func BenchmarkRealGEMMLinearShape(b *testing.B) { benchRealGEMM(b, 128, 512, 128) }
func BenchmarkRealGEMMFCShape(b *testing.B)     { benchRealGEMM(b, 512, 512, 128) }

func BenchmarkRealAttentionBGEMMShape(b *testing.B) {
	// 64 batched 16x16x8 GEMMs — the skinny memory-bound manifestation.
	const batch, n, dh = 64, 16, 8
	r := tensor.NewRNG(1)
	q := make([]float32, batch*n*dh)
	k := make([]float32, batch*n*dh)
	s := make([]float32, batch*n*n)
	for i := range q {
		q[i] = r.Float32()
		k[i] = r.Float32()
	}
	b.SetBytes(int64(4 * (2*batch*n*dh + batch*n*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.BatchedGEMM(batch, false, true, n, n, dh, 1, q, n*dh, k, n*dh, 0, s, n*n)
	}
}

func BenchmarkRealSoftmax(b *testing.B) {
	const rows, n = 2048, 128
	r := tensor.NewRNG(1)
	x := make([]float32, rows*n)
	y := make([]float32, rows*n)
	for i := range x {
		x[i] = r.Float32()
	}
	b.SetBytes(int64(8 * rows * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Softmax(y, x, rows, n)
	}
}

func BenchmarkRealLayerNorm(b *testing.B) {
	const rows, n = 2048, 256
	r := tensor.NewRNG(1)
	x := make([]float32, rows*n)
	y := make([]float32, rows*n)
	gamma := make([]float32, n)
	beta := make([]float32, n)
	mean := make([]float32, rows)
	invStd := make([]float32, rows)
	for i := range x {
		x[i] = r.Float32()
	}
	for i := range gamma {
		gamma[i] = 1
	}
	b.SetBytes(int64(8 * rows * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.LayerNormForward(y, x, gamma, beta, mean, invStd, rows, n, 1e-5)
	}
}

func BenchmarkRealGeLU(b *testing.B) {
	const n = 1 << 19
	r := tensor.NewRNG(1)
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = r.Float32() - 0.5
	}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.GeLUForward(y, x)
	}
}

// Real LAMB update over a tiny model's parameter population (Takeaway 7's
// memory-intensive pattern).
func BenchmarkRealLAMBStep(b *testing.B) {
	m, err := model.New(TinyBERT(), 1)
	if err != nil {
		b.Fatal(err)
	}
	params := m.Params()
	r := tensor.NewRNG(2)
	for _, p := range params {
		p.Grad.FillUniform(r, -0.01, 0.01)
	}
	ctx := &nn.Ctx{RNG: tensor.NewRNG(3), Train: true}
	opt := optim.NewLAMB(0.001)
	var bytes int64
	for _, p := range params {
		bytes += int64(p.Size()) * optim.BytesPerParam
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(ctx, params)
	}
}

// Fused vs unfused Adam, executed for real (Fig. 12a's runtime axis).
func benchRealAdam(b *testing.B, fused bool) {
	m, err := model.New(TinyBERT(), 1)
	if err != nil {
		b.Fatal(err)
	}
	params := m.Params()
	r := tensor.NewRNG(2)
	for _, p := range params {
		p.Grad.FillUniform(r, -0.01, 0.01)
	}
	ctx := &nn.Ctx{RNG: tensor.NewRNG(3), Train: true}
	opt := optim.NewAdam(0.001, fused)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(ctx, params)
	}
}

func BenchmarkRealAdamFused(b *testing.B)   { benchRealAdam(b, true) }
func BenchmarkRealAdamUnfused(b *testing.B) { benchRealAdam(b, false) }

// Real DP AllReduce cost model evaluation speed (used inside Fig. 11).
func BenchmarkDistModelEvaluation(b *testing.B) {
	dev := MI100()
	r := perfmodel.Run(opgraph.Build(Phase1(BERTLarge(), 16, FP32)), dev)
	for i := 0; i < b.N; i++ {
		dist.DataParallel("D2", r, 128, true)
	}
}

// ---------------------------------------------------------------------------
// Ablations and extensions beyond the paper's headline experiments.

// Fused attention-score pipeline at BERT-Large scale: how much of the
// Scale+Mask+DR+SM share does the Section 6.1.1 fusion recover?
func BenchmarkAblationFusedAttentionModel(b *testing.B) {
	dev := MI100()
	var base, fused *Result
	for i := 0; i < b.N; i++ {
		w := Phase1(BERTLarge(), 32, FP32)
		base = Characterize(w, dev)
		w.FusedAttention = true
		fused = Characterize(w, dev)
	}
	b.ReportMetric(1e3*base.Total.Seconds(), "baseline-ms")
	b.ReportMetric(1e3*fused.Total.Seconds(), "fused-ms")
	b.ReportMetric(100*(float64(base.Total)/float64(fused.Total)-1), "iteration-speedup-%")
}

// Real fused vs unfused attention-score pipeline (engine ablation).
func benchRealAttention(b *testing.B, fusedSoftmax bool) {
	r := tensor.NewRNG(1)
	a := nn.NewMultiHeadAttention("a", 128, 8, 0, r)
	a.FusedSoftmax = fusedSoftmax
	const batch, n = 4, 64
	x := tensor.New(batch*n, 128)
	x.FillUniform(r, -1, 1)
	ctx := &nn.Ctx{RNG: tensor.NewRNG(2), Train: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(ctx, x, batch, n, nil)
	}
}

func BenchmarkRealAttentionUnfusedSoftmax(b *testing.B) { benchRealAttention(b, false) }
func BenchmarkRealAttentionFusedSoftmax(b *testing.B)   { benchRealAttention(b, true) }

// Decoder (causal) vs encoder training cost — Section 2.3's claim that
// masking does not affect training cost structure.
func BenchmarkRealCausalVsEncoder(b *testing.B) {
	for _, causal := range []bool{false, true} {
		name := "encoder"
		if causal {
			name = "decoder-causal"
		}
		b.Run(name, func(b *testing.B) {
			cfg := TinyBERT()
			cfg.Causal = causal
			m, err := model.New(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			batch := data.NewGenerator(cfg.Vocab, 0.15, 2).Next(4, 32)
			ctx := &nn.Ctx{RNG: tensor.NewRNG(3), Train: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(ctx, batch)
				m.ZeroGrads()
			}
		})
	}
}

// Run-mode comparison (Section 7): pre-training vs fine-tuning vs
// inference modeled iteration times.
func BenchmarkModesComparison(b *testing.B) {
	dev := MI100()
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, mode := range []RunMode{Pretraining, FineTuning, Inference} {
			w := Phase1(BERTLarge(), 32, FP32)
			w.Mode = mode
			if mode == Inference {
				w.Optimizer = opgraph.OptNone
			}
			times[mode.String()] = Characterize(w, dev).Total.Seconds()
		}
	}
	b.ReportMetric(1e3*times["pretrain"], "pretrain-ms")
	b.ReportMetric(1e3*times["finetune"], "finetune-ms")
	b.ReportMetric(1e3*times["inference"], "inference-ms")
}

// ZeRO and in-network processing extensions (Sections 5.2 and 6.2.3).
func BenchmarkZeROExtension(b *testing.B) {
	dev := MI100()
	r := perfmodel.Run(opgraph.Build(Phase1(BERTLarge(), 16, FP32)), dev)
	var z, d1 dist.Profile
	for i := 0; i < b.N; i++ {
		z = dist.ZeRO("ZeRO-128", r, 128, dev)
		d1 = dist.DataParallel("D1", r, 128, false)
	}
	b.ReportMetric(100*z.UpdateShare(), "zero-update-%")
	b.ReportMetric(100*dist.SingleGPU("s", r).Share(opgraph.ClassLAMB), "baseline-update-%")
	b.ReportMetric(100*z.CommShare(), "zero-comm-%")
	b.ReportMetric(100*d1.CommShare(), "dp-comm-%")
}

func BenchmarkInNetworkAllReduce(b *testing.B) {
	dev := MI100()
	w := Phase1(BERTLarge(), 64, FP32)
	var ring, innet dist.Profile
	for i := 0; i < b.N; i++ {
		ring = dist.TensorSlicing("T2", w, 8, dev)
		innet = dist.TensorSlicingInNetwork("T2-innet", w, 8, dev)
	}
	b.ReportMetric(100*ring.CommShare(), "ring-comm-%")
	b.ReportMetric(100*innet.CommShare(), "innetwork-comm-%")
}

// Model checkpoint serialization throughput.
func BenchmarkModelSaveLoad(b *testing.B) {
	m, err := model.New(TinyBERT(), 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := m.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := model.Load(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine parallel-scaling ablation: GEMM throughput vs worker count.
func BenchmarkAblationGEMMWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			old := kernels.SetMaxWorkers(workers)
			defer kernels.SetMaxWorkers(old)
			benchRealGEMM(b, 256, 256, 256)
		})
	}
}

// Real data-parallel training: D replicas + actual ring AllReduce.
func BenchmarkRealDDPStep(b *testing.B) {
	cfg := TinyBERT()
	tr, err := ddp.NewTrainer(cfg, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 2)
	shards := []*data.Batch{gen.Next(2, 16), gen.Next(2, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(shards); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.CommBytesPerStep())/1e6, "comm-MB/replica")
}

func BenchmarkRealRingAllReduce(b *testing.B) {
	const d, n = 4, 1 << 18
	r := tensor.NewRNG(1)
	buffers := make([][]float32, d)
	for i := range buffers {
		buffers[i] = make([]float32, n)
		for j := range buffers[i] {
			buffers[i][j] = r.Float32()
		}
	}
	b.SetBytes(int64(d) * ddp.BytesMoved(n, d))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RingBuffersReset(buffers, r)
		ddp.RingAllReduce(buffers)
	}
}

// RingBuffersReset refreshes buffers between iterations so the reduce
// operates on fresh values.
func RingBuffersReset(buffers [][]float32, r *tensor.RNG) {
	for i := range buffers {
		for j := range buffers[i] {
			buffers[i][j] = r.Float32()
		}
	}
}

// Activation-memory footprint model (Section 4's capacity motivation).
func BenchmarkMemoryFootprint(b *testing.B) {
	var plain, ck int64
	var maxB, maxBCk int
	for i := 0; i < b.N; i++ {
		w := Phase1(BERTLarge(), 32, FP32)
		plain = opgraph.Footprint(w).Total()
		maxB = opgraph.MaxBatchSize(Phase1(BERTLarge(), 1, FP32), 32e9)
		w.CheckpointEvery = 6
		ck = opgraph.Footprint(w).Total()
		wc := Phase1(BERTLarge(), 1, FP32)
		wc.CheckpointEvery = 6
		maxBCk = opgraph.MaxBatchSize(wc, 32e9)
	}
	b.ReportMetric(float64(plain)/1e9, "plain-GB")
	b.ReportMetric(float64(ck)/1e9, "checkpointed-GB")
	b.ReportMetric(float64(maxB), "maxB-32GB")
	b.ReportMetric(float64(maxBCk), "maxB-32GB-ckpt")
}

// Real m-way tensor-sliced encoder layer vs the unsliced reference.
func BenchmarkRealTensorSlicedLayer(b *testing.B) {
	r := tensor.NewRNG(1)
	ref := nn.NewEncoderLayer("ref", 64, 4, 256, 0, r)
	for _, m := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ways=%d", m), func(b *testing.B) {
			s, err := ddp.NewSlicedLayer(ref, m)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(4*32, 64)
			x.FillUniform(r, -1, 1)
			ctx := &nn.Ctx{RNG: tensor.NewRNG(2), Train: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Forward(ctx, x, 4, 32)
			}
		})
	}
}

// Optimizer-choice ablation: LAMB vs fused Adam vs SGD update phases.
func BenchmarkAblationOptimizerChoice(b *testing.B) {
	dev := MI100()
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, k := range map[string]opgraph.OptimizerKind{
			"lamb": opgraph.OptLAMB, "adam": opgraph.OptAdam, "sgd": opgraph.OptSGD,
		} {
			w := Phase1(BERTLarge(), 32, FP32)
			w.Optimizer = k
			r := Characterize(w, dev)
			times[name] = 1e3 * r.ByClass()[opgraph.ClassLAMB].Seconds()
		}
	}
	b.ReportMetric(times["lamb"], "lamb-update-ms")
	b.ReportMetric(times["adam"], "adam-update-ms")
	b.ReportMetric(times["sgd"], "sgd-update-ms")
}

// ---------------------------------------------------------------------------
// Table 2 GEMM shapes at full BERT-Large scale (B=4, seq 128 => 512 tokens).
// Each shape runs the cache-blocked path (kernels.GEMM, packs B per call),
// the pre-packed path (kernels.GEMMPacked consuming a PackedB built once,
// as nn.Linear does via the Param pack cache), and the naive reference
// (kernels.GEMMNaive) so the speedups are measured in-tree:
//
//	go test -bench GEMMPaperSizes -benchmem .
//
// The packed variant is only meaningful where the B operand is a weight
// (qkv/fc forward NT, dgrad NN); wgrad's B is an activation tensor and is
// never cached, so it has no packed row.
func BenchmarkGEMMPaperSizes(b *testing.B) {
	shapes := []struct {
		name    string
		ta, tb  bool
		m, n, k int
		weightB bool // B is a parameter: eligible for the pre-packed path
	}{
		{"qkv_fwd_NT_512x1024x1024", false, true, 512, 1024, 1024, true},
		{"fc1_fwd_NT_512x4096x1024", false, true, 512, 4096, 1024, true},
		{"fc2_fwd_NT_512x1024x4096", false, true, 512, 1024, 4096, true},
		{"wgrad_TN_1024x1024x512", true, false, 1024, 1024, 512, false},
		{"dgrad_NN_512x1024x1024", false, false, 512, 1024, 1024, true},
	}
	impls := []struct {
		name string
		run  func(ta, tb bool, m, n, k int, a, bm, c []float32)
	}{
		{"blocked", func(ta, tb bool, m, n, k int, a, bm, c []float32) {
			kernels.GEMM(ta, tb, m, n, k, 1, a, bm, 0, c)
		}},
		{"naive", func(ta, tb bool, m, n, k int, a, bm, c []float32) {
			kernels.GEMMNaive(ta, tb, m, n, k, 1, a, bm, 0, c)
		}},
	}
	for _, s := range shapes {
		for _, im := range impls {
			b.Run(s.name+"/"+im.name, func(b *testing.B) {
				r := tensor.NewRNG(1)
				a := make([]float32, s.m*s.k)
				bm := make([]float32, s.k*s.n)
				c := make([]float32, s.m*s.n)
				for i := range a {
					a[i] = r.Float32()
				}
				for i := range bm {
					bm[i] = r.Float32()
				}
				im.run(s.ta, s.tb, s.m, s.n, s.k, a, bm, c) // warm pools
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					im.run(s.ta, s.tb, s.m, s.n, s.k, a, bm, c)
				}
				flops := float64(2*s.m*s.n*s.k) * float64(b.N)
				b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
		if !s.weightB {
			continue
		}
		b.Run(s.name+"/packed", func(b *testing.B) {
			r := tensor.NewRNG(1)
			a := make([]float32, s.m*s.k)
			bm := make([]float32, s.k*s.n)
			c := make([]float32, s.m*s.n)
			for i := range a {
				a[i] = r.Float32()
			}
			for i := range bm {
				bm[i] = r.Float32()
			}
			pb := kernels.PackWeight(s.tb, s.n, s.k, bm)
			kernels.GEMMPacked(s.ta, s.m, s.n, s.k, 1, a, pb, 0, c) // warm pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.GEMMPacked(s.ta, s.m, s.n, s.k, 1, a, pb, 0, c)
			}
			flops := float64(2*s.m*s.n*s.k) * float64(b.N)
			b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
	// Table 2b batched attention shapes: per-(batch x head) score products
	// n x n x dHead (NT) and context products n x dHead x n (NN), at
	// sequence lengths 128 (phase-1) and 512 (phase-2) plus the real-engine
	// TinyBERT shape (n=16, dHead=8) where per-matrix dispatch used to fall
	// back to scalar naive. Each runs the blocked batched engine against the
	// per-matrix baseline.
	type bshape struct {
		name       string
		ta, tb     bool
		batch      int
		m, n, k    int
		sA, sB, sC int
	}
	var bshapes []bshape
	for _, cfg := range []struct {
		n, dh int
		batch int
	}{
		{16, 8, 64}, // TinyBERT real-engine shape (B=4 x 16 heads... B=16 x 4 heads)
		{128, 64, 8},
		{128, 64, 64},
		{512, 64, 8},
		{512, 64, 64},
	} {
		n, dh, batch := cfg.n, cfg.dh, cfg.batch
		bshapes = append(bshapes,
			bshape{
				name: fmt.Sprintf("attn_score_NT_b%d_%dx%dx%d", batch, n, n, dh),
				ta:   false, tb: true, batch: batch,
				m: n, n: n, k: dh, sA: n * dh, sB: n * dh, sC: n * n,
			},
			bshape{
				name: fmt.Sprintf("attn_ctx_NN_b%d_%dx%dx%d", batch, n, dh, n),
				ta:   false, tb: false, batch: batch,
				m: n, n: dh, k: n, sA: n * n, sB: n * dh, sC: n * dh,
			},
		)
	}
	bimpls := []struct {
		name string
		run  func(s bshape, a, bm, c []float32)
	}{
		{"blocked", func(s bshape, a, bm, c []float32) {
			kernels.BatchedGEMM(s.batch, s.ta, s.tb, s.m, s.n, s.k, 1, a, s.sA, bm, s.sB, 0, c, s.sC)
		}},
		{"permatrix", func(s bshape, a, bm, c []float32) {
			kernels.BatchedGEMMPerMatrix(s.batch, s.ta, s.tb, s.m, s.n, s.k, 1, a, s.sA, bm, s.sB, 0, c, s.sC)
		}},
	}
	for _, s := range bshapes {
		for _, im := range bimpls {
			b.Run(s.name+"/"+im.name, func(b *testing.B) {
				r := tensor.NewRNG(1)
				a := make([]float32, s.batch*s.sA)
				bm := make([]float32, s.batch*s.sB)
				c := make([]float32, s.batch*s.sC)
				for i := range a {
					a[i] = r.Float32()
				}
				for i := range bm {
					bm[i] = r.Float32()
				}
				im.run(s, a, bm, c) // warm pools
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					im.run(s, a, bm, c)
				}
				flops := float64(2*s.batch*s.m*s.n*s.k) * float64(b.N)
				b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Fused GEMM epilogues and the int8 quantized path — Section 6.1's fusion
// argument executed for real, plus the quantized-inference throughput row.

// benchRealFFNEpilogue runs the full FFN block — FC1 + bias + GeLU, then
// FC2 + bias + residual + LayerNorm — at a Table 2 shape (512 tokens of
// BERT-Large: d=1024, dff=4096). The unfused baseline is the legacy
// sequence on the blocked engine: per-call weight packing and separate
// AddBias / GeLUForward / Add / LayerNormForward passes, each of which is
// a full DRAM round trip of the activation. The fused variant consumes
// pre-packed weights (as nn.Linear does via the Param pack cache) and
// folds every tail operator into the GEMM tile write-back. Both legs save
// the training-time backward state (pre-activations, LN statistics).
func benchRealFFNEpilogue(b *testing.B, fused bool) {
	const tokens, d, dff = 512, 1024, 4096
	r := tensor.NewRNG(1)
	x := make([]float32, tokens*d)
	w1 := make([]float32, dff*d)
	b1 := make([]float32, dff)
	w2 := make([]float32, d*dff)
	b2 := make([]float32, d)
	gamma := make([]float32, d)
	beta := make([]float32, d)
	for _, s := range [][]float32{x, w1, b1, w2, b2, beta} {
		for i := range s {
			s[i] = r.Float32() - 0.5
		}
	}
	for i := range gamma {
		gamma[i] = 1
	}
	h := make([]float32, tokens*dff)   // FC1 pre-activation
	a := make([]float32, tokens*dff)   // GeLU output
	y := make([]float32, tokens*d)     // FC2 output
	res := make([]float32, tokens*d)   // pre-LN sum
	out := make([]float32, tokens*d)   // LN output
	mean := make([]float32, tokens)
	invStd := make([]float32, tokens)
	const eps = 1e-5
	pb1 := kernels.PackWeight(true, dff, d, w1)
	pb2 := kernels.PackWeight(true, d, dff, w2)
	ep1 := &kernels.Epilogue{Kind: kernels.EpilogueBiasGeLU, Bias: b1, X: h}
	ep2 := &kernels.Epilogue{
		Kind: kernels.EpilogueBiasResidualLayerNorm,
		Bias: b2, Residual: x, Gamma: gamma, Beta: beta, Eps: eps,
		X: res, Mean: mean, InvStd: invStd,
	}
	run := func() {
		if fused {
			kernels.GEMMPackedEpilogue(false, tokens, dff, d, 1, x, pb1, ep1, a)
			kernels.GEMMPackedEpilogue(false, tokens, d, dff, 1, a, pb2, ep2, out)
			return
		}
		kernels.GEMM(false, true, tokens, dff, d, 1, x, w1, 0, h)
		kernels.AddBias(h, b1, tokens, dff)
		kernels.GeLUForward(a, h)
		kernels.GEMM(false, true, tokens, d, dff, 1, a, w2, 0, y)
		kernels.AddBias(y, b2, tokens, d)
		kernels.Add(res, y, x)
		kernels.LayerNormForward(out, res, gamma, beta, mean, invStd, tokens, d, eps)
	}
	run() // warm pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	flops := float64(2*tokens*dff*d+2*tokens*d*dff) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkRealFFNUnfusedTail(b *testing.B)   { benchRealFFNEpilogue(b, false) }
func BenchmarkRealFFNFusedEpilogue(b *testing.B) { benchRealFFNEpilogue(b, true) }

// BenchmarkGEMMInt8PaperSizes measures the int8 quantized engine against
// the pre-packed f32 path on the Table 2 forward shapes whose B operand is
// a weight (the only shapes the int8 path serves: nn.Linear forwards).
// GFLOP/s counts the same 2mnk useful work for both so the rows compare
// directly.
func BenchmarkGEMMInt8PaperSizes(b *testing.B) {
	shapes := []struct {
		name    string
		m, n, k int
	}{
		{"qkv_fwd_NT_512x1024x1024", 512, 1024, 1024},
		{"fc1_fwd_NT_512x4096x1024", 512, 4096, 1024},
		{"fc2_fwd_NT_512x1024x4096", 512, 1024, 4096},
	}
	for _, s := range shapes {
		r := tensor.NewRNG(1)
		x := make([]float32, s.m*s.k)
		w := make([]float32, s.n*s.k)
		c := make([]float32, s.m*s.n)
		for i := range x {
			x[i] = r.Float32() - 0.5
		}
		for i := range w {
			w[i] = r.Float32() - 0.5
		}
		flopsPerOp := float64(2 * s.m * s.n * s.k)
		b.Run(s.name+"/f32packed", func(b *testing.B) {
			pb := kernels.PackWeight(true, s.n, s.k, w)
			kernels.GEMMPacked(false, s.m, s.n, s.k, 1, x, pb, 0, c) // warm pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.GEMMPacked(false, s.m, s.n, s.k, 1, x, pb, 0, c)
			}
			b.ReportMetric(flopsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		b.Run(s.name+"/int8", func(b *testing.B) {
			pb := kernels.PackWeightInt8(true, s.n, s.k, w)
			kernels.GEMMInt8(s.m, s.n, s.k, x, pb, nil, c) // warm pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.GEMMInt8(s.m, s.n, s.k, x, pb, nil, c)
			}
			b.ReportMetric(flopsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// Reworked bias kernels: AddBias dispatches flattened element ranges (so
// short-and-wide activations still use the full pool) and BiasGrad sweeps
// row-major column bands instead of stride-n column walks.
func BenchmarkRealAddBias(b *testing.B) {
	for _, s := range []struct {
		name string
		m, n int
	}{
		{"short-wide_8x4096", 8, 4096},
		{"tall_2048x1024", 2048, 1024},
	} {
		b.Run(s.name, func(b *testing.B) {
			r := tensor.NewRNG(1)
			x := make([]float32, s.m*s.n)
			bias := make([]float32, s.n)
			for i := range x {
				x[i] = r.Float32()
			}
			kernels.AddBias(x, bias, s.m, s.n) // warm pools
			b.SetBytes(int64(8 * s.m * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.AddBias(x, bias, s.m, s.n)
			}
		})
	}
}

func BenchmarkRealBiasGrad(b *testing.B) {
	for _, s := range []struct {
		name string
		m, n int
	}{
		{"short-wide_8x4096", 8, 4096},
		{"tall_2048x1024", 2048, 1024},
	} {
		b.Run(s.name, func(b *testing.B) {
			r := tensor.NewRNG(1)
			dY := make([]float32, s.m*s.n)
			dB := make([]float32, s.n)
			for i := range dY {
				dY[i] = r.Float32()
			}
			kernels.BiasGrad(dB, dY, s.m, s.n) // warm pools
			b.SetBytes(int64(4 * s.m * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.BiasGrad(dB, dY, s.m, s.n)
			}
		})
	}
}
