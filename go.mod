module demystbert

go 1.22
