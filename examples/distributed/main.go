// Distributed: reproduce Fig. 11's multi-GPU profiles (data parallelism
// with and without overlap, 2-way and 8-way tensor slicing), then extend
// the study with scaling sweeps the paper discusses: exposed communication
// versus tensor-slicing ways, and the effect of hypothetical interconnect
// improvements on the 8-way configuration.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demystbert"
	"demystbert/internal/data"
	"demystbert/internal/ddp"
	"demystbert/internal/dist"
	"demystbert/internal/nn"
	"demystbert/internal/opgraph"
	"demystbert/internal/perfmodel"
	"demystbert/internal/tensor"
)

func main() {
	cfg := demystbert.BERTLarge()
	dev := demystbert.MI100()

	// The paper's five bars.
	if err := demystbert.WriteArtifact(os.Stdout, "fig11", cfg, dev); err != nil {
		log.Fatal(err)
	}

	// Extension 1: exposed communication vs tensor-slicing ways
	// (Takeaway 13's trend, swept).
	fmt.Println("tensor slicing: exposed communication vs ways (B=32, FP32)")
	fmt.Println("===========================================================")
	w := demystbert.Phase1(cfg, 32, demystbert.FP32)
	for _, m := range []int{2, 4, 8, 16} {
		p := dist.TensorSlicing(fmt.Sprintf("TS-%d", m), w, m, dev)
		fmt.Printf("  %2d-way: total %8v  comm %5.1f%%  LAMB %4.1f%%\n",
			m, p.Total.Round(time.Millisecond), 100*p.CommShare(), 100*p.Share(opgraph.ClassLAMB))
	}

	// Extension 2: data parallelism at growing device counts, with and
	// without overlap.
	fmt.Println("\ndata parallelism: device-count scaling (B=16, FP32)")
	fmt.Println("===================================================")
	r := perfmodel.Run(opgraph.Build(demystbert.Phase1(cfg, 16, demystbert.FP32)), dev)
	for _, d := range []int{8, 32, 128, 512} {
		no := dist.DataParallel("no-overlap", r, d, false)
		ov := dist.DataParallel("overlap", r, d, true)
		fmt.Printf("  D=%3d: no-overlap comm %5.1f%%  |  overlapped exposed comm %4.1f%% (hidden %v)\n",
			d, 100*no.CommShare(), 100*ov.CommShare(), ov.HiddenComm.Round(time.Millisecond))
	}

	// Extension 3: REAL data-parallel training at engine scale — three
	// replicas, a real ring AllReduce over goroutines, replicas verified
	// bit-identical after every step (Section 2.5's semantics executed).
	fmt.Println("\nreal data-parallel training (3 replicas, tiny BERT, real ring AllReduce)")
	fmt.Println("=========================================================================")
	tiny := demystbert.TinyBERT()
	tiny.DropProb = 0
	tr, err := ddp.NewTrainer(tiny, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	gen := data.NewGenerator(tiny.Vocab, 0.15, 43)
	shards := []*data.Batch{gen.Next(2, 16), gen.Next(2, 16), gen.Next(2, 16)}
	for step := 0; step < 4; step++ {
		losses, err := tr.Step(shards)
		if err != nil {
			log.Fatal(err)
		}
		sync, _ := tr.InSync()
		fmt.Printf("  step %d: losses %.4f %.4f %.4f  replicas-in-sync=%v\n",
			step+1, losses[0], losses[1], losses[2], sync)
	}
	fmt.Printf("  gradient sync: %.2f MB transmitted per replica per step (ring AllReduce)\n",
		float64(tr.CommBytesPerStep())/1e6)

	// Extension 3b: REAL tensor slicing — an encoder layer split 2-way
	// Megatron-style, its four per-layer AllReduces executed, and the
	// output verified against the unsliced layer (Fig. 10 made runnable).
	fmt.Println("\nreal tensor slicing (2-way Megatron split of one encoder layer)")
	fmt.Println("===============================================================")
	rng := tensor.NewRNG(7)
	refLayer := nn.NewEncoderLayer("ref", 64, 4, 256, 0, rng)
	sliced, err := ddp.NewSlicedLayer(refLayer, 2)
	if err != nil {
		log.Fatal(err)
	}
	xIn := tensor.New(8*16, 64)
	xIn.FillUniform(rng, -1, 1)
	refCtx := &nn.Ctx{RNG: tensor.NewRNG(1), Train: true}
	tsCtx := &nn.Ctx{RNG: tensor.NewRNG(1), Train: true}
	want := refLayer.Forward(refCtx, xIn, 8, 16, nil)
	got := sliced.Forward(tsCtx, xIn, 8, 16)
	var maxDiff float64
	for i := range want.Data() {
		d := float64(want.Data()[i] - got.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("  sliced vs unsliced output: max |diff| = %.2e (numerical parity)\n", maxDiff)

	// Extension 4: hypothetical interconnects for 8-way TS (Section 5.1's
	// projection capability; in-network processing motivation of 6.2.3).
	fmt.Println("\n8-way tensor slicing under faster interconnects (B=64, FP32)")
	fmt.Println("=============================================================")
	w64 := demystbert.Phase1(cfg, 64, demystbert.FP32)
	for _, x := range []float64{1, 2, 4, 8} {
		p := dist.TensorSlicing("TS-8", w64, 8, dev.Scale(1, 1, x))
		fmt.Printf("  link x%-3.0f: total %8v  comm %5.1f%%\n",
			x, p.Total.Round(time.Millisecond), 100*p.CommShare())
	}
}
