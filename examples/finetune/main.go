// Finetune: the paper's Fig. 1 workflow executed for real — pre-train a
// tiny BERT, checkpoint it, reload it, attach a SQuAD-style span head,
// fine-tune on synthetic QA pairs, and predict answer spans — then model
// the same workflow's cost at BERT-Large scale (Section 7's claim that
// fine-tuning and pre-training share cost structure while the task head
// is negligible).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"demystbert"
	"demystbert/internal/data"
	"demystbert/internal/nn"
	"demystbert/internal/opgraph"
	"demystbert/internal/optim"
)

func main() {
	cfg := demystbert.TinyBERT()
	cfg.DropProb = 0

	// 1. Pre-train briefly.
	fmt.Println("pre-training (masked-LM + NSP, LAMB)...")
	pre, err := demystbert.NewModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	gen := data.NewGenerator(cfg.Vocab, 0.15, 43)
	ctx := nn.NewCtx(44)
	opt := optim.NewLAMB(0.01)
	for i := 0; i < 4; i++ {
		loss := pre.Step(ctx, gen.Next(4, 32))
		opt.Step(ctx, pre.Params())
		pre.ZeroGrads()
		fmt.Printf("  pretrain iteration %d: loss %.4f\n", i+1, loss)
	}

	// 2. Checkpoint and reload (the hand-off between Fig. 1a and 1b).
	var ckpt bytes.Buffer
	if err := pre.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes for %d parameters\n\n", ckpt.Len(), pre.NumParams())
	base, err := demystbert.LoadModel(&ckpt)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fine-tune a span head on one synthetic QA batch until the model
	//    finds the answer.
	fmt.Println("fine-tuning a SQuAD-style span head...")
	f := demystbert.NewFineTunerFor(base, 45)
	qa := gen.NextQA(2, 16)
	ftOpt := optim.NewLAMB(0.02)
	for i := 0; i < 30; i++ {
		loss := f.Step(ctx, qa)
		ftOpt.Step(ctx, f.Params())
		f.ZeroGrads()
		if i%10 == 9 {
			fmt.Printf("  finetune iteration %d: span loss %.4f\n", i+1, loss)
		}
	}
	starts, ends := f.PredictSpan(ctx, qa)
	for s := 0; s < qa.B; s++ {
		fmt.Printf("  sequence %d: predicted span (%d,%d), gold (%d,%d)\n",
			s, starts[s], ends[s], qa.StartPos[s], qa.EndPos[s])
	}

	// 4. The same workflow's cost structure at BERT-Large scale.
	fmt.Println("\nmodeled BERT-Large iteration cost by run mode (Ph1-B32-FP32):")
	dev := demystbert.MI100()
	for _, mode := range []demystbert.RunMode{demystbert.Pretraining, demystbert.FineTuning, demystbert.Inference} {
		w := demystbert.Phase1(demystbert.BERTLarge(), 32, demystbert.FP32)
		w.Mode = mode
		if mode == demystbert.Inference {
			w.Optimizer = opgraph.OptNone
		}
		r := demystbert.Characterize(w, dev)
		fmt.Printf("  %-10s %8v  (transformer %.1f%%, output %.1f%%)\n",
			mode, r.Total.Round(time.Millisecond),
			100*r.ClassShare(opgraph.ClassTransformer),
			100*r.ClassShare(opgraph.ClassOutput))
	}
}
