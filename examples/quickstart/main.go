// Quickstart: train a tiny BERT for real on the pure-Go engine, watch the
// loss fall, and inspect the rocProf-style kernel profile — the library's
// two substrates in one program.
package main

import (
	"fmt"
	"log"
	"os"

	"demystbert"
)

func main() {
	// 1. Real execution: a reduced-scale BERT (2 layers, d_model 64)
	//    pre-trained on synthetic data with masked-LM + NSP losses and
	//    LAMB updates.
	cfg := demystbert.TinyBERT()
	fmt.Printf("training a tiny BERT: %d layers, d_model %d, %d parameters\n",
		cfg.NumLayers, cfg.DModel, cfg.ParamCount())

	run, err := demystbert.MemorizeReal(cfg, 4, 32, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	for i, loss := range run.Losses {
		fmt.Printf("  iteration %d: loss %.4f\n", i+1, loss)
	}
	last, first := run.Losses[len(run.Losses)-1], run.Losses[0]
	fmt.Printf("loss fell %.1f%% over %d iterations on a fixed batch\n\n",
		100*(1-last/first), len(run.Losses))

	run.Profile.WriteReport(os.Stdout, "kernel profile (all iterations)")

	// 2. Analytical model: the same iteration at BERT-Large scale on an
	//    MI100-class device — the paper's Ph1-B32-FP32 configuration.
	fmt.Println()
	r := demystbert.Characterize(demystbert.Phase1(demystbert.BERTLarge(), 32, demystbert.FP32), demystbert.MI100())
	fmt.Printf("BERT-Large Ph1-B32-FP32 modeled iteration: %v\n", r.Total)
	fmt.Printf("  GEMM share %.1f%%  |  LAMB share %.1f%%  |  attention ops %.1f%%\n",
		100*r.GEMMShare(), 100*r.LAMBShare(), 100*r.AttentionOpsShare())
}
