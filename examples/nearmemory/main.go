// Nearmemory: reproduce the paper's optimization studies — the kernel- and
// GEMM-fusion analysis of Fig. 12 and the near-memory-compute offload of
// LAMB (Section 6.2.1) — then extend them: NMC benefit versus model width,
// and the combined fusion + NMC headroom on a single iteration.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"demystbert"
	"demystbert/internal/fusion"
	"demystbert/internal/nmc"
)

func main() {
	cfg := demystbert.BERTLarge()
	dev := demystbert.MI100()

	for _, a := range []string{"fig12a", "fig12b", "nmc"} {
		if err := demystbert.WriteArtifact(os.Stdout, a, cfg, dev); err != nil {
			log.Fatal(err)
		}
	}

	// Extension 1: NMC benefit vs Transformer width (the paper notes the
	// parameter count — and thus LAMB traffic — grows quadratically).
	fmt.Println("\nNMC end-to-end benefit vs model width (Ph1-B32-FP32)")
	fmt.Println("====================================================")
	sys := nmc.NewSystem()
	for _, d := range []int{512, 1024, 2048, 4096} {
		c := demystbert.BERTLarge()
		c.DModel, c.DFF, c.Heads = d, 4*d, d/64
		st := sys.StudyLAMB(demystbert.Phase1(c, 32, demystbert.FP32))
		fmt.Printf("  d_model=%-5d LAMB traffic %6.2f GB  NMC LAMB %8v  end-to-end +%.1f%%\n",
			d, float64(st.LAMBBytes)/1e9, st.NMC.Round(time.Microsecond),
			100*st.EndToEndImprovement())
	}

	// Extension 2: how the QKV fusion benefit decays with token count —
	// locating the paper's "up to 62%" region.
	fmt.Println("\nQKV GEMM fusion speedup vs token count (d_model=1024, FP32)")
	fmt.Println("===========================================================")
	for _, tokens := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
		s := fusion.QKV(tokens, 1024, demystbert.FP32, dev)
		fmt.Printf("  tokens=%-6d speedup %5.0f%%\n", tokens, 100*(s.Speedup()-1))
	}

	// Extension 3: combined headroom — NMC for LAMB plus fused attention
	// score pipeline (scale+mask+softmax as one kernel saves two full
	// passes over the scores in each direction).
	fmt.Println("\ncombined optimization headroom (Ph1-B32-FP32)")
	fmt.Println("=============================================")
	base := demystbert.Characterize(demystbert.Phase1(cfg, 32, demystbert.FP32), dev)
	st := sys.StudyLAMB(demystbert.Phase1(cfg, 32, demystbert.FP32))
	fmt.Printf("  baseline iteration:        %v\n", base.Total.Round(time.Millisecond))
	fmt.Printf("  + NMC LAMB offload:        %v (+%.1f%%)\n",
		st.NMCTotal.Round(time.Millisecond), 100*st.EndToEndImprovement())
}
