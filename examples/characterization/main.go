// Characterization: regenerate the paper's single-device evaluation — the
// Fig. 3 runtime breakdowns, Fig. 4 hierarchy, Fig. 6/7 arithmetic
// intensities, the Fig. 8/9 hyperparameter sweeps, the checkpointing
// study, and the Table 1 takeaway verdicts — and print a paper-vs-model
// comparison for the headline numbers.
package main

import (
	"fmt"
	"log"
	"os"

	"demystbert"
	"demystbert/internal/opgraph"
	"demystbert/internal/profile"
)

func main() {
	cfg := demystbert.BERTLarge()
	dev := demystbert.MI100()

	for _, a := range []string{"table2b", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "ckpt", "takeaways"} {
		if err := demystbert.WriteArtifact(os.Stdout, a, cfg, dev); err != nil {
			log.Fatal(err)
		}
	}

	// Headline paper-vs-model comparison.
	fp32 := demystbert.Characterize(demystbert.Phase1(cfg, 32, demystbert.FP32), dev)
	mp := demystbert.Characterize(demystbert.Phase1(cfg, 32, demystbert.Mixed), dev)
	b4 := demystbert.Characterize(demystbert.Phase1(cfg, 4, demystbert.FP32), dev)
	fb32 := fp32.PhaseTime(profile.Forward) + fp32.PhaseTime(profile.Backward)
	fb16 := mp.PhaseTime(profile.Forward) + mp.PhaseTime(profile.Backward)

	fmt.Println("\npaper vs model (headline claims)")
	fmt.Println("================================")
	row := func(what, paper string, model float64, unit string) {
		fmt.Printf("  %-44s paper %-10s model %.1f%s\n", what, paper, model, unit)
	}
	row("Transformer share, Ph1-B32-FP32", "68-85%", 100*fp32.ClassShare(opgraph.ClassTransformer), "%")
	row("LAMB share, Ph1-B32-FP32", "7-10%", 100*fp32.LAMBShare(), "%")
	row("LAMB share, Ph1-B4-FP32", "~25%", 100*b4.LAMBShare(), "%")
	row("LAMB share, Ph1-B32-FP16", "16-19%", 100*mp.LAMBShare(), "%")
	row("GEMM share, FP32", "~55%", 100*fp32.GEMMShare(), "%")
	row("GEMM share, MP", "~36%", 100*mp.GEMMShare(), "%")
	row("Linear+FC share, FP32", "~57%", 100*fp32.LinearFCShare(), "%")
	row("Linear+FC share, MP", "~42%", 100*mp.LinearFCShare(), "%")
	row("Attention ops share, FP32", "~7%", 100*fp32.AttentionOpsShare(), "%")
	row("MP FWD+BWD speedup", "~2x", float64(fb32)/float64(fb16), "x")
}
