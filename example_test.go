package demystbert_test

import (
	"fmt"

	"demystbert"
)

// Characterize a paper workload at BERT-Large scale and read off the
// headline shares of Fig. 3/4.
func ExampleCharacterize() {
	r := demystbert.Characterize(
		demystbert.Phase1(demystbert.BERTLarge(), 32, demystbert.FP32),
		demystbert.MI100())
	fmt.Printf("LAMB share: %.0f%%\n", 100*r.LAMBShare())
	fmt.Printf("GEMMs dominate: %v\n", r.GEMMShare() > 0.5)
	// Output:
	// LAMB share: 9%
	// GEMMs dominate: true
}

// Enumerate the Table 2b GEMM manifestations of one training iteration.
func ExampleBuildGraph() {
	g := demystbert.BuildGraph(demystbert.Phase1(demystbert.BERTLarge(), 32, demystbert.FP32))
	for _, op := range g.GEMMs() {
		if op.Name == "fc1_fwd" {
			fmt.Println(op.GEMM.Label())
		}
	}
	// Output:
	// NN_4096x4096x1024
}

// Train a reduced-scale BERT for real and inspect the kernel profile.
func ExampleTrainReal() {
	run, err := demystbert.TrainReal(demystbert.TinyBERT(), 2, 16, 1, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations: %d\n", len(run.Losses))
	fmt.Printf("GEMM kernels recorded: %v\n", run.Profile.GEMMShare() > 0)
	// Output:
	// iterations: 1
	// GEMM kernels recorded: true
}

// Study the near-memory-compute offload of the LAMB optimizer.
func ExampleNMCStudy() {
	st := demystbert.NMCStudy(demystbert.Phase1(demystbert.BERTLarge(), 32, demystbert.FP32))
	fmt.Printf("LAMB speedup vs optimistic GPU: %.1fx\n", st.SpeedupVsOptimistic())
	// Output:
	// LAMB speedup vs optimistic GPU: 3.7x
}

// Compare distributed-training strategies (Fig. 11).
func ExampleFig11Profiles() {
	ps := demystbert.Fig11Profiles(
		demystbert.Phase1(demystbert.BERTLarge(), 16, demystbert.FP32),
		demystbert.MI100())
	fmt.Printf("bars: %d\n", len(ps))
	fmt.Printf("tensor slicing exposes more comm at 8-way: %v\n",
		ps[4].CommShare() > ps[3].CommShare())
	// Output:
	// bars: 5
	// tensor slicing exposes more comm at 8-way: true
}
